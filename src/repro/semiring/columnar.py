"""Columnar factors: the NumPy data plane for the numeric semirings.

A :class:`ColumnarFactor` stores an ``n``-row factor as

* one ``int64`` *code* array per schema variable, dictionary-encoding
  arbitrary hashable domain values (code ``c`` of variable ``v`` decodes
  via ``dictionary(v)[c]``), and
* one annotation array in the dtype of the semiring's
  :class:`~repro.semiring.backend.VectorProfile`.

It is a :class:`~repro.semiring.factor.Factor` subclass with the same
public surface — the ``rows`` dict is materialized lazily and cached — so
every dict-path consumer (protocols, solvers, equality) keeps working
unchanged.  The hot-path operators in :mod:`repro.faq.operations`
dispatch to the vectorized kernels below whenever all operands are
columnar:

* :func:`columnar_join` — hash join via ``argsort``/``searchsorted`` on a
  mixed-radix composite key over the shared columns;
* :func:`columnar_project` / :func:`columnar_marginalize` — grouped
  ⊕-reduction (``ufunc.reduceat`` over sort-clustered groups);
* :func:`columnar_semijoin` — membership test against the sorted unique
  keys of the right side.

Kernels return ``None`` when they cannot run (the composite key would
overflow ``int64`` — astronomically large combined dictionaries); callers
then fall back to the generic dict path, which is always correct.

Row tuples inside a :class:`ColumnarFactor` are unique (the kernels only
ever produce unique rows from unique inputs, and every constructor goes
through the canonicalizing :class:`Factor` dict first), and annotations
never equal the semiring zero — the same canonical listing representation
the dict backend maintains.
"""

from __future__ import annotations

import types
from typing import Any, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .. import kernels
from .backend import (
    BACKEND_COLUMNAR,
    VectorProfile,
    profile_for,
    supports_columnar,
)
from .factor import Factor, Tuple_
from .semirings import BOOLEAN, Semiring

# Composite keys are built in mixed radix; cap the radix product at 2**62
# so ``key * card + code`` can never overflow a signed 64-bit integer.
_MAX_RADIX = 2 ** 62

# Integer-profile annotations (COUNTING) live in int64, where NumPy wraps
# silently on overflow — a wrapped product hitting 0 would even be dropped
# as a "zero" row.  Kernels bound the worst-case result magnitude up front
# and return None (dict fallback, exact Python ints) when it could overflow.
_INT64_MAX = 2 ** 63 - 1


class ColumnarFactor(Factor):
    """A factor whose rows live in per-variable NumPy code arrays.

    Accepts the same ``(schema, rows, semiring, name)`` constructor as
    :class:`Factor` (rows are canonicalized through the dict representation
    first, then encoded), so the inherited ``from_tuples`` /
    ``constant_one`` classmethods work unchanged.  Use
    :meth:`from_factor` to convert an existing factor and
    :meth:`_from_arrays` (internal) to wrap pre-built arrays.

    The exposed ``codes`` / ``dictionaries`` / ``values`` buffers are
    shared, not copied, between derived factors: treat them as immutable.

    Raises:
        ValueError: if the semiring has no vector profile (exotic
            semirings stay on the dict backend; see
            :func:`repro.semiring.backend.to_backend` for the graceful
            conversion).
    """

    __slots__ = ("_codes", "_dicts", "_values", "_rows_cache")

    def __init__(
        self,
        schema: Sequence[str],
        rows: Mapping[Tuple_, Any] | Iterable[Tuple[Tuple_, Any]] = (),
        semiring: Semiring = BOOLEAN,
        name: str | None = None,
    ) -> None:
        base = Factor(schema, rows, semiring, name)
        codes, dicts, values = _encode(base, profile_for(semiring))
        self._adopt(base.schema, codes, dicts, values, semiring, base.name)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_factor(cls, factor: Factor) -> "ColumnarFactor":
        """Encode any factor columnar (identity on columnar inputs)."""
        if isinstance(factor, ColumnarFactor):
            return factor
        codes, dicts, values = _encode(factor, profile_for(factor.semiring))
        return cls._from_arrays(
            factor.schema, codes, dicts, values, factor.semiring, factor.name
        )

    @classmethod
    def _from_arrays(
        cls,
        schema: Sequence[str],
        codes: Sequence[np.ndarray],
        dicts: Sequence[List[Any]],
        values: np.ndarray,
        semiring: Semiring,
        name: str | None = None,
    ) -> "ColumnarFactor":
        """Wrap pre-built arrays without re-canonicalizing (kernel use)."""
        self = object.__new__(cls)
        self._adopt(tuple(schema), codes, dicts, values, semiring, name)
        return self

    def _adopt(self, schema, codes, dicts, values, semiring, name) -> None:
        schema = tuple(schema)
        if len(set(schema)) != len(schema):
            # Same invariant Factor.__init__ enforces; kernels and rename()
            # route through here, so the backends fail identically.
            raise ValueError(f"schema has duplicate variables: {schema}")
        self.schema = schema
        self.semiring = semiring
        self.name = name
        self._codes = tuple(
            np.ascontiguousarray(c, dtype=np.int64) for c in codes
        )
        # Dictionaries are shared by reference between derived factors
        # (immutable by convention, per the class docstring).  Instances
        # of list subclasses (e.g. the array-carrying Dictionary) pass
        # through unchanged.
        self._dicts = tuple(d if isinstance(d, list) else list(d) for d in dicts)
        self._values = values
        self._rows_cache = None

    # ------------------------------------------------------------------
    # Columnar surface
    # ------------------------------------------------------------------
    @property
    def codes(self) -> Tuple[np.ndarray, ...]:
        """Per-schema-variable ``int64`` code arrays (treat as immutable)."""
        return self._codes

    @property
    def dictionaries(self) -> Tuple[List[Any], ...]:
        """Per-variable code -> domain-value lists (treat as immutable)."""
        return self._dicts

    @property
    def values(self) -> np.ndarray:
        """The annotation array (treat as immutable)."""
        return self._values

    @property
    def backend(self) -> str:
        return BACKEND_COLUMNAR

    def dictionary(self, var: str) -> List[Any]:
        """The dictionary (code -> value list) of one schema variable."""
        return self._dicts[self.column_index(var)]

    def to_dict_factor(self, name: str | None = None) -> Factor:
        """Decode into a plain dict-backed :class:`Factor`."""
        out = Factor(self.schema, semiring=self.semiring, name=name or self.name)
        out.rows = dict(self.rows)
        return out

    # ------------------------------------------------------------------
    # Factor surface (overridden where the dict would be materialized
    # needlessly; everything else inherits and reads ``rows`` lazily)
    # ------------------------------------------------------------------
    @property
    def rows(self):
        """A read-only row mapping, decoded lazily from the columns.

        Read-only because the arrays are the authoritative storage here —
        mutating a returned dict (which *is* valid on the base ``Factor``)
        would silently desync from the codes/values the kernels read.
        """
        if self._rows_cache is None:
            values = self._values.tolist()
            if not self.schema:
                decoded = {(): v for v in values}
            else:
                columns = [
                    [d[c] for c in codes.tolist()]
                    for codes, d in zip(self._codes, self._dicts)
                ]
                decoded = {
                    tuple(col[i] for col in columns): values[i]
                    for i in range(len(values))
                }
            self._rows_cache = types.MappingProxyType(decoded)
        return self._rows_cache

    def __len__(self) -> int:
        return len(self._values)

    def active_domain(self, var: str) -> set:
        i = self.column_index(var)
        d = self._dicts[i]
        return {d[c] for c in np.unique(self._codes[i]).tolist()}

    def size_bits(self, bits_per_tuple: int) -> int:
        return len(self._values) * bits_per_tuple

    def rename(self, mapping: Mapping[str, str], name: str | None = None) -> "ColumnarFactor":
        new_schema = tuple(mapping.get(v, v) for v in self.schema)
        return ColumnarFactor._from_arrays(
            new_schema, self._codes, self._dicts, self._values,
            self.semiring, name or self.name,
        )

    def copy(self, name: str | None = None) -> "ColumnarFactor":
        return ColumnarFactor._from_arrays(
            self.schema, self._codes, self._dicts, self._values,
            self.semiring, name or self.name,
        )

    def with_semiring(self, semiring: Semiring, convert=None) -> Factor:
        """Reinterpret in another semiring, staying columnar when possible.

        Falls back to the dict result for unsupported target semirings or
        converted annotations outside the vector profile's integer range —
        the same graceful degradation :func:`to_backend` provides.
        """
        out = super().with_semiring(semiring, convert)
        if supports_columnar(semiring):
            try:
                return ColumnarFactor.from_factor(out)
            except OverflowError:
                return out
        return out


# ---------------------------------------------------------------------------
# Encoding helpers
# ---------------------------------------------------------------------------


class Dictionary(list):
    """A code -> value list that remembers the array it was decoded from.

    Dictionaries built by the vectorized ``np.unique`` encoder are plain
    value lists *derived from* a homogeneous NumPy array; keeping that
    array alongside lets the compiled executor's
    :class:`~repro.faq.executor.DictionaryPool` union dictionaries with
    one concatenate+sort instead of re-converting (and re-type-checking)
    the Python lists per execution.  ``array`` is ``None`` for
    dictionaries of unknown provenance; consumers must fall back to the
    list contents then.  Behaves as (and compares equal to) the plain
    list everywhere else.
    """

    __slots__ = ("_array",)

    def __init__(self, values=(), array: Optional[np.ndarray] = None) -> None:
        super().__init__(values)
        self._array = array

    @property
    def array(self) -> Optional[np.ndarray]:
        """The cached homogeneous array view (treat as immutable)."""
        return self._array


#: NumPy dtype kinds that round-trip each homogeneous Python element type
#: exactly.  The kind must MATCH the element type: a huge-int column that
#: NumPy silently promotes to float64 (values >= 2**63) would otherwise
#: slip through as kind "f" and decode lossily.
_EXACT_KINDS = {int: "iu", bool: "b", str: "U", float: "f"}


def _exact_array(elem_type: type, values: Sequence[Any]) -> Optional[np.ndarray]:
    """An exact-round-trip array view of a homogeneous column, or ``None``.

    ``None`` when the element type has no exact NumPy mapping, the
    conversion promoted (``int`` -> float64), or the column holds floats
    that break dictionary-key semantics (NaN: ``nan != nan``; ``-0.0``:
    ``np.unique`` may pick a different sign representative than the
    first-appearance loop).

    Raises:
        TypeError/ValueError/OverflowError: whatever ``np.asarray`` raises
            on unconvertible values (callers treat those as ``None``).
    """
    kinds = _EXACT_KINDS.get(elem_type)
    if kinds is None:
        return None
    arr = np.asarray(values)
    if arr.ndim != 1 or arr.dtype.kind not in kinds:
        return None
    if arr.dtype.kind == "f" and (
        np.isnan(arr).any() or bool(((arr == 0.0) & np.signbit(arr)).any())
    ):
        return None
    return arr


def _encode_column(col: Sequence[Any], n: int):
    """Dictionary-encode one column into (int64 codes, dictionary list).

    Vectorized via ``np.unique`` for *homogeneous* ``int``/``bool``/
    ``str``/``float`` columns (the dictionary then lists values in sorted
    order — any coding is valid, decoding restores the original values
    exactly); every other column — mixed types, tuples, arbitrary
    hashables — takes the generic first-appearance loop, whose round trip
    is exact by construction.  Float columns only qualify when they carry
    neither NaN (``nan != nan`` breaks dictionary-key semantics) nor a
    negative zero (``-0.0 == 0.0`` would let ``np.unique`` pick a
    different sign representative than the first-appearance loop).
    """
    column_types = set(map(type, col))
    if len(column_types) == 1:
        try:
            arr = _exact_array(next(iter(column_types)), col)
        except (TypeError, ValueError, OverflowError):
            arr = None
        if arr is not None:
            uniq, inverse = np.unique(arr, return_inverse=True)
            return (
                inverse.reshape(-1).astype(np.int64, copy=False),
                Dictionary(uniq.tolist(), array=uniq),
            )
    dictionary: List[Any] = []
    code_map: dict = {}
    codes = np.empty(n, dtype=np.int64)
    for i, x in enumerate(col):
        c = code_map.get(x)
        if c is None:
            c = len(dictionary)
            code_map[x] = c
            dictionary.append(x)
        codes[i] = c
    return codes, dictionary


def _encode_rows(schema_len: int, rows: List[Tuple]):
    """Dictionary-encode row tuples into per-column (codes, dictionary)."""
    n = len(rows)
    if n == 0 or schema_len == 0:
        return (
            [np.empty(n, dtype=np.int64) for _ in range(schema_len)],
            [[] for _ in range(schema_len)],
        )
    columns = list(zip(*rows))
    codes: List[np.ndarray] = []
    dicts: List[List[Any]] = []
    for col in columns:
        col_codes, dictionary = _encode_column(col, n)
        codes.append(col_codes)
        dicts.append(dictionary)
    return codes, dicts


def _encode(factor: Factor, profile: VectorProfile):
    """Dictionary-encode a dict-backed factor into columnar arrays."""
    rows = list(factor.rows)
    codes, dicts = _encode_rows(len(factor.schema), rows)
    values = np.array(list(factor.rows.values()), dtype=profile.dtype)
    return codes, dicts, values


def _merge_dictionaries(left_dict: List[Any], right_dict: List[Any]):
    """Merge two column dictionaries, preserving the left coding.

    Returns:
        ``(merged, remap)`` where ``merged`` extends ``left_dict`` with the
        right-only values and ``remap[right_code] -> merged_code``.

    Interned columns (the compiled executor's
    :class:`~repro.faq.executor.DictionaryPool` hands every operand the
    *same* dictionary object per variable) short-circuit to an identity
    remap — no Python loop over the dictionary contents.
    """
    if left_dict is right_dict:
        return left_dict, np.arange(len(right_dict), dtype=np.int64)
    index = {v: i for i, v in enumerate(left_dict)}
    merged = list(left_dict)
    remap = np.empty(len(right_dict), dtype=np.int64)
    for j, v in enumerate(right_dict):
        c = index.get(v)
        if c is None:
            c = len(merged)
            index[v] = c
            merged.append(v)
        remap[j] = c
    return merged, remap


def _composite_key(
    columns: Sequence[np.ndarray], cards: Sequence[int], n: int
) -> Optional[np.ndarray]:
    """Mixed-radix fold of code columns into one ``int64`` key per row.

    Returns ``None`` when the radix product would overflow (callers fall
    back to the dict path or to lexsort-based grouping).
    """
    if len(columns) == 1:
        # Single-column key: the codes already are the key.  Callers treat
        # keys as read-only, so aliasing the column is safe.
        if max(int(cards[0]), 1) > _MAX_RADIX:
            return None
        return columns[0]
    key = np.zeros(n, dtype=np.int64)
    radix = 1
    for col, card in zip(columns, cards):
        card = max(int(card), 1)
        if radix > _MAX_RADIX // card:
            return None
        key = key * card + col
        radix *= card
    return key


def _sort_groups(columns: Sequence[np.ndarray], cards: Sequence[int], n: int):
    """Cluster rows by the given code columns.

    Returns:
        ``(order, starts)``: a permutation sorting rows into contiguous
        groups and the start offset of each group in that order.  Uses the
        composite key when it fits ``int64``; otherwise a lexsort over the
        raw columns (never falls back to the dict path).
    """
    if not columns:
        return np.arange(n, dtype=np.int64), np.zeros(1, dtype=np.int64)
    key = _composite_key(columns, cards, n)
    if key is not None:
        # Composite-key fast path: one stable sort in the active kernel
        # tier (:mod:`repro.kernels`).
        return kernels.sort_groups_key(key)
    order = np.lexsort(tuple(reversed(columns)))
    change = np.zeros(n - 1, dtype=bool)
    for col in columns:
        sorted_col = col[order]
        change |= sorted_col[1:] != sorted_col[:-1]
    starts = np.flatnonzero(np.concatenate(([True], change))).astype(np.int64)
    return order, starts


def _int_values_exceed(profile: VectorProfile, values: np.ndarray, bound: int) -> bool:
    """True when ``values`` holds bounded ints whose magnitude tops ``bound``.

    Used to pre-check overflow: float profiles saturate to ``inf`` safely
    and are never flagged; integer (COUNTING) profiles wrap silently, so
    any magnitude above ``bound`` sends the caller to the dict fallback.
    """
    if not np.issubdtype(profile.dtype, np.integer) or not len(values):
        return False
    return int(np.abs(values).max()) > bound


def _shared_key_pair(left: ColumnarFactor, right: ColumnarFactor, shared):
    """Composite join keys over the shared columns of two factors.

    Merges the per-variable dictionaries left-preserving, then folds each
    side's (remapped) code columns into one ``int64`` key per row.

    Returns:
        ``(left_key, right_key, merged_dicts)``, or ``None`` when the
        composite key would overflow (callers fall back to the dict path).
    """
    merged_dicts = {}
    left_cols, right_cols, cards = [], [], []
    for v in shared:
        li, ri = left.column_index(v), right.column_index(v)
        merged, remap = _merge_dictionaries(
            left.dictionaries[li], right.dictionaries[ri]
        )
        merged_dicts[v] = merged
        left_cols.append(left.codes[li])
        right_cols.append(remap[right.codes[ri]])
        cards.append(len(merged))
    left_key = _composite_key(left_cols, cards, len(left))
    right_key = _composite_key(right_cols, cards, len(right))
    if left_key is None or right_key is None:
        return None
    return left_key, right_key, merged_dicts


def _match_indices(left_key: np.ndarray, right_key: np.ndarray):
    """Row-index pairs of the equi-join ``left_key = right_key``.

    Dispatches to the active kernel tier (:mod:`repro.kernels`): a
    stable sort of the right side probed with ``searchsorted``, match
    runs expanded with ``repeat``/``arange`` arithmetic.  Returns
    ``(left_idx, right_idx)`` such that ``left_key[left_idx[i]] ==
    right_key[right_idx[i]]`` enumerates every matching pair, grouped by
    left row in left order.
    """
    return kernels.match_indices(left_key, right_key)


def _empty_like(
    schema: Sequence[str],
    dicts: Sequence[List[Any]],
    semiring: Semiring,
    name: str | None,
) -> ColumnarFactor:
    profile = profile_for(semiring)
    return ColumnarFactor._from_arrays(
        schema,
        [np.empty(0, dtype=np.int64) for _ in schema],
        dicts,
        np.empty(0, dtype=profile.dtype),
        semiring,
        name,
    )


# ---------------------------------------------------------------------------
# Vectorized operator kernels
# ---------------------------------------------------------------------------


# ---------------------------------------------------------------------------
# Wire codec — the compiled engine's columnar message format
# ---------------------------------------------------------------------------


class WireBlock:
    """A columnar block of rows as it travels the compiled data plane.

    The block is the unit the compiled protocol engine ships over edges:
    one ``int64`` code array per schema variable (dictionary-encoded like
    :class:`ColumnarFactor`), plus an optional annotation array for blocks
    that carry semiring values.  Slicing is zero-copy (NumPy views share
    the buffers and the dictionaries), which is what makes per-round
    capacity enforcement a pair of array views instead of per-tuple
    message objects.

    Bit accounting is the codec's contract with Model 2.1: a block of
    ``n`` rows costs exactly ``n * tuple_bits`` on the wire (plus
    ``n * value_bits`` when it carries annotations) — identical to the
    per-tuple charges of the generator engine.  :meth:`wire_bits` is the
    single source of truth; property tests pin it to
    ``FAQQuery.bits_per_tuple``.
    """

    __slots__ = ("schema", "codes", "dictionaries", "values")

    def __init__(
        self,
        schema: Sequence[str],
        codes: Sequence[np.ndarray],
        dictionaries: Sequence[List[Any]],
        values: Optional[np.ndarray] = None,
    ) -> None:
        self.schema = tuple(schema)
        self.codes = tuple(np.asarray(c, dtype=np.int64) for c in codes)
        self.dictionaries = tuple(dictionaries)
        self.values = values
        if len(self.codes) != len(self.schema):
            raise ValueError("one code column per schema variable required")
        lengths = {len(c) for c in self.codes}
        if self.values is not None:
            lengths.add(len(self.values))
        if len(lengths) > 1:
            raise ValueError(f"ragged wire block: column lengths {lengths}")

    # -- construction ---------------------------------------------------
    @classmethod
    def encode_rows(
        cls, schema: Sequence[str], rows: Iterable[Tuple_]
    ) -> "WireBlock":
        """Dictionary-encode plain row tuples (no annotations)."""
        schema = tuple(schema)
        rows = list(rows)
        codes, dicts = _encode_rows(len(schema), rows)
        return cls(schema, codes, dicts)

    @classmethod
    def encode_factor(cls, factor: Factor) -> "WireBlock":
        """Encode a factor's rows *and* annotations.

        Columnar factors are wrapped zero-copy (the arrays are shared);
        dict factors are dictionary-encoded.  Row order follows the
        factor's own listing order, so slot indices line up with
        ``factor.tuples()`` on both engines.

        Raises:
            OverflowError: if an integer-profile annotation does not fit
                the profile dtype (callers fall back to the dict plane).
        """
        if isinstance(factor, ColumnarFactor):
            return cls(
                factor.schema, factor.codes, factor.dictionaries, factor.values
            )
        profile = profile_for(factor.semiring)
        codes, dicts, values = _encode(factor, profile)
        return cls(factor.schema, codes, dicts, values)

    # -- surface --------------------------------------------------------
    def __len__(self) -> int:
        return len(self.codes[0]) if self.codes else (
            len(self.values) if self.values is not None else 0
        )

    @property
    def schema_index(self) -> dict:
        return {v: i for i, v in enumerate(self.schema)}

    def column(self, var: str) -> np.ndarray:
        return self.codes[self.schema.index(var)]

    def dictionary(self, var: str) -> List[Any]:
        return self.dictionaries[self.schema.index(var)]

    def slice(self, start: int, stop: int) -> "WireBlock":
        """A zero-copy sub-block of rows ``[start, stop)``."""
        return WireBlock(
            self.schema,
            [c[start:stop] for c in self.codes],
            self.dictionaries,
            None if self.values is None else self.values[start:stop],
        )

    def wire_bits(self, tuple_bits: int, value_bits: int = 0) -> int:
        """Exact Model 2.1 cost of shipping this block.

        ``tuple_bits`` per row, plus ``value_bits`` per row when the
        block carries annotations — the same charges the generator
        engine applies per tuple/value message.
        """
        per_row = max(1, tuple_bits) + (
            value_bits if self.values is not None else 0
        )
        return len(self) * per_row

    def decode_rows(self) -> List[Tuple_]:
        """Decode back into plain row tuples (codec identity)."""
        n = len(self)
        if not self.schema:
            return [() for _ in range(n)]
        columns = []
        for codes, d in zip(self.codes, self.dictionaries):
            lut = np.empty(len(d), dtype=object)
            lut[:] = d
            columns.append(lut[codes].tolist())
        return list(zip(*columns))

    def decode_items(self) -> List[Tuple[Tuple_, Any]]:
        """Decode ``(row, annotation)`` pairs (requires annotations)."""
        if self.values is None:
            raise ValueError("block carries no annotations")
        return list(zip(self.decode_rows(), self.values.tolist()))


def encode_wire_block(
    schema: Sequence[str], rows: Iterable[Tuple_]
) -> WireBlock:
    """Module-level convenience for :meth:`WireBlock.encode_rows`."""
    return WireBlock.encode_rows(schema, rows)


def columnar_join(
    left: ColumnarFactor, right: ColumnarFactor, name: str | None = None
) -> Optional[ColumnarFactor]:
    """Vectorized natural join with ⊗-multiplied annotations.

    Sorts the right side on the composite shared-variable key and probes
    it with ``searchsorted`` (the columnar analogue of the dict hash
    join); match runs are expanded with ``repeat``/``arange`` arithmetic.
    Returns ``None`` on composite-key overflow, or when an integer-profile
    annotation product could overflow ``int64`` (caller falls back to the
    dict path's exact arithmetic).
    """
    profile = profile_for(left.semiring)
    if np.issubdtype(profile.dtype, np.integer) and len(left) and len(right):
        left_max = int(np.abs(left.values).max())
        right_max = int(np.abs(right.values).max())
        if left_max and right_max and left_max > _INT64_MAX // right_max:
            return None
    shared = [v for v in left.schema if v in right.schema]
    out_schema = tuple(left.schema) + tuple(
        v for v in right.schema if v not in left.schema
    )

    keys = _shared_key_pair(left, right, shared)
    if keys is None:
        return None
    left_key, right_key, merged_dicts = keys

    left_idx, right_idx = _match_indices(left_key, right_key)
    values = profile.mul(left.values[left_idx], right.values[right_idx])
    zero = profile.is_zero_mask(values)
    if zero.any():
        keep = ~zero
        left_idx, right_idx, values = left_idx[keep], right_idx[keep], values[keep]

    out_codes, out_dicts = [], []
    for v in out_schema:
        if v in merged_dicts:
            out_codes.append(left.codes[left.column_index(v)][left_idx])
            out_dicts.append(merged_dicts[v])
        elif v in left.schema:
            i = left.column_index(v)
            out_codes.append(left.codes[i][left_idx])
            out_dicts.append(left.dictionaries[i])
        else:
            i = right.column_index(v)
            out_codes.append(right.codes[i][right_idx])
            out_dicts.append(right.dictionaries[i])
    return ColumnarFactor._from_arrays(
        out_schema, out_codes, out_dicts, values, left.semiring, name
    )


def columnar_semijoin(
    left: ColumnarFactor, right: ColumnarFactor, name: str | None = None
) -> Optional[ColumnarFactor]:
    """Vectorized semijoin ``left ⋉ right`` (Definition 3.5).

    Returns ``None`` on composite-key overflow (caller falls back).
    """
    shared = [v for v in left.schema if v in right.schema]
    if not shared:
        if len(right) == 0:
            return _empty_like(left.schema, left.dictionaries, left.semiring, name)
        return left.copy(name=name)
    if len(left) == 0 or len(right) == 0:
        return _empty_like(left.schema, left.dictionaries, left.semiring, name)

    keys = _shared_key_pair(left, right, shared)
    if keys is None:
        return None
    left_key, right_key, _merged = keys

    uniq = np.unique(right_key)
    pos = np.minimum(np.searchsorted(uniq, left_key), len(uniq) - 1)
    keep = uniq[pos] == left_key
    return ColumnarFactor._from_arrays(
        left.schema,
        [c[keep] for c in left.codes],
        left.dictionaries,
        left.values[keep],
        left.semiring,
        name,
    )


def _grouped_reduce(
    factor: ColumnarFactor, out_vars: Sequence[str], name: str | None
) -> Optional[ColumnarFactor]:
    """Group rows by ``out_vars`` and ⊕-reduce each group's annotations.

    Returns ``None`` when an integer-profile group sum could overflow
    ``int64`` (worst case: every row in one group at the max magnitude);
    callers fall back to the dict path's exact arithmetic.
    """
    profile = profile_for(factor.semiring)
    out_vars = tuple(out_vars)
    idx = [factor.column_index(v) for v in out_vars]
    out_dicts = [factor.dictionaries[i] for i in idx]
    n = len(factor)
    if n == 0:
        return _empty_like(out_vars, out_dicts, factor.semiring, name)
    if _int_values_exceed(profile, factor.values, _INT64_MAX // n):
        return None

    columns = [factor.codes[i] for i in idx]
    cards = [len(factor.dictionaries[i]) for i in idx]
    order, starts = _sort_groups(columns, cards, n)
    reduced = kernels.grouped_reduce(factor.values, order, starts, profile.add)
    representatives = order[starts]
    out_codes = [c[representatives] for c in columns]

    zero = profile.is_zero_mask(reduced)
    if zero.any():
        keep = ~zero
        reduced = reduced[keep]
        out_codes = [c[keep] for c in out_codes]
    return ColumnarFactor._from_arrays(
        out_vars, out_codes, out_dicts, reduced, factor.semiring, name
    )


def columnar_project(
    factor: ColumnarFactor, variables: Sequence[str], name: str | None = None
) -> Optional[ColumnarFactor]:
    """Vectorized projection ``pi_variables`` with ⊕-combined duplicates.

    Returns ``None`` on possible integer overflow (caller falls back).
    """
    return _grouped_reduce(factor, variables, name)


def columnar_marginalize(
    factor: ColumnarFactor, variable: str, name: str | None = None
) -> Optional[ColumnarFactor]:
    """Vectorized FAQ-SS marginalization (⊕ = the semiring's ``add``).

    Custom aggregates and full-domain folds take the dict path; the
    dispatcher in :mod:`repro.faq.operations` enforces that.  Returns
    ``None`` on possible integer overflow (caller falls back).
    """
    factor.column_index(variable)  # raise KeyError on absent variables
    out_schema = tuple(v for v in factor.schema if v != variable)
    return _grouped_reduce(factor, out_schema, name)
