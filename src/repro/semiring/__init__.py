"""Semirings, semiring-annotated relations (factors) and their backends."""

from .backend import (
    BACKEND_COLUMNAR,
    BACKEND_DICT,
    BACKENDS,
    VECTOR_PROFILES,
    VectorProfile,
    backend_of,
    profile_for,
    supports_columnar,
    to_backend,
    validate_backend,
)
from .columnar import ColumnarFactor, WireBlock, encode_wire_block
from .factor import Factor
from .semirings import (
    BOOLEAN,
    BUILTIN_SEMIRINGS,
    COUNTING,
    GF2,
    MAX_PLUS,
    MAX_TIMES,
    MIN_PLUS,
    REAL,
    Semiring,
    check_semiring_axioms,
    get_semiring,
)

__all__ = [
    "Factor",
    "ColumnarFactor",
    "WireBlock",
    "encode_wire_block",
    "Semiring",
    "BOOLEAN",
    "COUNTING",
    "REAL",
    "MIN_PLUS",
    "MAX_PLUS",
    "MAX_TIMES",
    "GF2",
    "BUILTIN_SEMIRINGS",
    "get_semiring",
    "check_semiring_axioms",
    "BACKEND_DICT",
    "BACKEND_COLUMNAR",
    "BACKENDS",
    "VectorProfile",
    "VECTOR_PROFILES",
    "backend_of",
    "profile_for",
    "supports_columnar",
    "to_backend",
    "validate_backend",
]
