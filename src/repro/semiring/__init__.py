"""Semirings and semiring-annotated relations (factors)."""

from .factor import Factor
from .semirings import (
    BOOLEAN,
    BUILTIN_SEMIRINGS,
    COUNTING,
    GF2,
    MAX_PLUS,
    MAX_TIMES,
    MIN_PLUS,
    REAL,
    Semiring,
    check_semiring_axioms,
    get_semiring,
)

__all__ = [
    "Factor",
    "Semiring",
    "BOOLEAN",
    "COUNTING",
    "REAL",
    "MIN_PLUS",
    "MAX_PLUS",
    "MAX_TIMES",
    "GF2",
    "BUILTIN_SEMIRINGS",
    "get_semiring",
    "check_semiring_axioms",
]
