"""Factors: semiring-annotated relations in listing representation.

The paper (Section 1) represents each input function
``f_e : prod_{v in e} Dom(v) -> D`` as the list of its non-zero values

    R_e = {(y, f_e(y)) | y in prod Dom(v), f_e(y) != 0}.

:class:`Factor` is exactly that: a schema (ordered tuple of variable names)
plus a dict mapping value-tuples to non-zero semiring annotations.  A plain
relation is a Boolean factor (every present tuple annotated ``True``).

This dict storage is the ``"dict"`` *backend*: fully generic over hashable
domains and arbitrary semirings.  The vectorized ``"columnar"`` backend
(:class:`~repro.semiring.columnar.ColumnarFactor`, a subclass with the same
public surface) stores rows as per-variable NumPy code arrays; convert
between the two with :func:`repro.semiring.backend.to_backend`.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, Mapping, Sequence, Tuple

from .semirings import BOOLEAN, Semiring

Tuple_ = Tuple[Any, ...]


class Factor:
    """An annotated relation over a fixed schema.

    Args:
        schema: Ordered, duplicate-free variable names.
        rows: Mapping (or iterable of pairs) from value tuples to
            annotations.  Tuples annotated with the semiring zero are
            dropped, keeping the listing representation canonical.
        semiring: The annotation semiring; defaults to Boolean.
        name: Optional relation name (e.g. ``"R"``); used in reprs and by
            the distributed protocols to identify which player holds what.
    """

    __slots__ = ("schema", "rows", "semiring", "name")

    def __init__(
        self,
        schema: Sequence[str],
        rows: Mapping[Tuple_, Any] | Iterable[Tuple[Tuple_, Any]] = (),
        semiring: Semiring = BOOLEAN,
        name: str | None = None,
    ) -> None:
        schema = tuple(schema)
        if len(set(schema)) != len(schema):
            raise ValueError(f"schema has duplicate variables: {schema}")
        self.schema: Tuple[str, ...] = schema
        self.semiring = semiring
        self.name = name
        items = rows.items() if isinstance(rows, Mapping) else rows
        cleaned: Dict[Tuple_, Any] = {}
        for key, value in items:
            key = tuple(key)
            if len(key) != len(schema):
                raise ValueError(
                    f"tuple {key!r} does not match schema {schema} (arity mismatch)"
                )
            if not semiring.is_zero(value):
                if key in cleaned:
                    # Listing representation has one entry per tuple;
                    # duplicates are combined additively.
                    cleaned[key] = semiring.add(cleaned[key], value)
                else:
                    cleaned[key] = value
        self.rows: Dict[Tuple_, Any] = cleaned

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_tuples(
        cls,
        schema: Sequence[str],
        tuples: Iterable[Tuple_],
        semiring: Semiring = BOOLEAN,
        name: str | None = None,
    ) -> "Factor":
        """Build a factor where every listed tuple is annotated ``one``."""
        one = semiring.one
        return cls(schema, ((tuple(t), one) for t in tuples), semiring, name)

    @classmethod
    def constant_one(
        cls,
        schema: Sequence[str],
        domains: Mapping[str, Sequence[Any]],
        semiring: Semiring = BOOLEAN,
        name: str | None = None,
    ) -> "Factor":
        """The all-ones factor over the full product domain of ``schema``.

        Used by lower-bound embeddings, e.g. the ``[N] x {1}`` filler
        relations of Lemma 4.3.
        """
        import itertools

        cols = [domains[v] for v in schema]
        return cls.from_tuples(schema, itertools.product(*cols), semiring, name)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Tuple[Tuple_, Any]]:
        return iter(self.rows.items())

    def __contains__(self, key: Tuple_) -> bool:
        return tuple(key) in self.rows

    def __call__(self, key: Tuple_) -> Any:
        """Evaluate the underlying function: zero for absent tuples."""
        return self.rows.get(tuple(key), self.semiring.zero)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Factor):
            return NotImplemented
        if self.schema != other.schema or self.semiring.name != other.semiring.name:
            return False
        if set(self.rows) != set(other.rows):
            return False
        eq = self.semiring.eq
        return all(eq(v, other.rows[k]) for k, v in self.rows.items())

    def __hash__(self):  # Factors are mutable-ish containers; not hashable.
        raise TypeError("Factor objects are unhashable")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or "Factor"
        return (
            f"<{label}({', '.join(self.schema)}) |rows|={len(self.rows)} "
            f"semiring={self.semiring.name}>"
        )

    @property
    def arity(self) -> int:
        """Number of variables in the schema (paper's ``r`` per relation)."""
        return len(self.schema)

    @property
    def backend(self) -> str:
        """Storage backend name (``"dict"`` here; ``"columnar"`` on the
        NumPy-backed subclass)."""
        return "dict"

    def column_index(self, var: str) -> int:
        """Position of ``var`` in the schema.

        Raises:
            KeyError: if ``var`` is not in the schema.
        """
        try:
            return self.schema.index(var)
        except ValueError:
            raise KeyError(f"variable {var!r} not in schema {self.schema}") from None

    def active_domain(self, var: str) -> set:
        """Values of ``var`` that appear in some listed tuple."""
        i = self.column_index(var)
        return {t[i] for t in self.rows}

    def size_bits(self, bits_per_tuple: int) -> int:
        """Total size in bits under a fixed per-tuple encoding.

        The paper charges ``O(r * log2 D)`` bits per tuple; callers supply
        that constant so protocols can account communication exactly.
        """
        return len(self.rows) * bits_per_tuple

    # ------------------------------------------------------------------
    # Simple transformations (heavier algebra lives in repro.faq.operations)
    # ------------------------------------------------------------------
    def rename(self, mapping: Mapping[str, str], name: str | None = None) -> "Factor":
        """Return a copy with schema variables renamed via ``mapping``."""
        new_schema = tuple(mapping.get(v, v) for v in self.schema)
        out = Factor(new_schema, semiring=self.semiring, name=name or self.name)
        out.rows = dict(self.rows)
        return out

    def with_semiring(self, semiring: Semiring, convert=None) -> "Factor":
        """Reinterpret annotations in another semiring.

        Args:
            semiring: Target semiring.
            convert: Optional per-annotation conversion; defaults to mapping
                every (non-zero) annotation to the target ``one`` — i.e. the
                canonical relation->factor lifting of Appendix G.4.
        """
        if convert is None:
            convert = lambda _value: semiring.one  # noqa: E731
        return Factor(
            self.schema,
            ((t, convert(v)) for t, v in self.rows.items()),
            semiring,
            self.name,
        )

    def project_tuple(self, row: Tuple_, variables: Sequence[str]) -> Tuple_:
        """Project one value tuple onto ``variables`` (paper's ``pi_S(t)``)."""
        idx = [self.column_index(v) for v in variables]
        return tuple(row[i] for i in idx)

    def is_boolean(self) -> bool:
        """True when annotated in the Boolean semiring."""
        return self.semiring.name == BOOLEAN.name

    def tuples(self) -> Iterator[Tuple_]:
        """Iterate value tuples (ignoring annotations)."""
        return iter(self.rows)

    def copy(self, name: str | None = None) -> "Factor":
        """Shallow copy (rows dict is copied; values are shared)."""
        out = Factor(self.schema, semiring=self.semiring, name=name or self.name)
        out.rows = dict(self.rows)
        return out
