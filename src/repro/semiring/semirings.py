"""Commutative semirings (paper Section 1, footnote 2).

A *commutative semiring* is a triple ``(D, +, *)`` where ``(D, +)`` and
``(D, *)`` are commutative monoids with identities ``0`` and ``1``, ``*``
distributes over ``+`` and ``0`` annihilates under ``*``.  All FAQ
computations in this library are parameterized over a :class:`Semiring`.

The paper's two headline instantiations are provided as
:data:`BOOLEAN` (Boolean Conjunctive Queries) and :data:`REAL` (PGM factor
marginals), along with the counting, tropical, GF(2) and max-product
semirings that the FAQ framework of Abo Khamis et al. (PODS 2016)
encompasses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(frozen=True)
class Semiring:
    """A commutative semiring ``(domain, add, mul)`` with identities.

    Attributes:
        name: Human-readable identifier (used in reprs and error messages).
        zero: Additive identity; also the "absent tuple" annotation in
            the listing representation of a factor.
        one: Multiplicative identity.
        add: Commutative, associative binary operator with identity ``zero``.
        mul: Commutative, associative binary operator with identity ``one``
            that distributes over ``add`` and annihilates on ``zero``.
        is_idempotent_add: True when ``add(x, x) == x`` for all x (e.g.
            Boolean or, min, max).  Idempotent addition lets repeated
            aggregation of the same value be collapsed, which the naive
            solver exploits when a bound variable occurs in no factor.
        eq: Equality predicate used by tests and solvers to compare results
            (floating-point semirings need a tolerance).
    """

    name: str
    zero: Any
    one: Any
    add: Callable[[Any, Any], Any]
    mul: Callable[[Any, Any], Any]
    is_idempotent_add: bool = False
    eq: Callable[[Any, Any], bool] = field(default=lambda a, b: a == b)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Semiring({self.name})"

    def sum(self, values) -> Any:
        """Fold ``add`` over an iterable, starting from ``zero``."""
        acc = self.zero
        for v in values:
            acc = self.add(acc, v)
        return acc

    def product(self, values) -> Any:
        """Fold ``mul`` over an iterable, starting from ``one``."""
        acc = self.one
        for v in values:
            acc = self.mul(acc, v)
        return acc

    def sum_repeat(self, value: Any, times: int) -> Any:
        """``value + value + ... + value`` (``times`` summands).

        Used when a bound variable appears in no factor: summing it out
        multiplies the result by its domain size *in the semiring's sense*.
        For idempotent addition this is just ``value`` (for ``times >= 1``).
        """
        if times < 0:
            raise ValueError(f"times must be non-negative, got {times}")
        if times == 0:
            return self.zero
        if self.is_idempotent_add:
            return value
        return fold_repeat(self.add, value, times)

    def is_zero(self, value: Any) -> bool:
        """True when ``value`` equals the additive identity."""
        return self.eq(value, self.zero)


def fold_repeat(op: Callable[[Any, Any], Any], value: Any, times: int) -> Any:
    """Fold ``times`` copies of ``value`` under an associative, commutative
    binary ``op`` in O(log times) via double-and-add.

    Used by :meth:`Semiring.sum_repeat` and by
    :func:`repro.faq.operations.aggregate_absent_variable` (any FAQ
    aggregate qualifies).

    Raises:
        ValueError: if ``times`` is not positive (there is no generic
            identity to return for an empty fold).
    """
    if times < 1:
        raise ValueError(f"times must be positive, got {times}")
    acc = None
    base = value
    n = times
    while n:
        if n & 1:
            acc = base if acc is None else op(acc, base)
        n >>= 1
        if n:
            base = op(base, base)
    return acc


def _float_eq(a: Any, b: Any) -> bool:
    return math.isclose(float(a), float(b), rel_tol=1e-9, abs_tol=1e-12)


#: Boolean semiring ({0,1}, or, and) — the BCQ semiring (paper Section 1).
BOOLEAN = Semiring(
    name="boolean",
    zero=False,
    one=True,
    add=lambda a, b: a or b,
    mul=lambda a, b: a and b,
    is_idempotent_add=True,
)

#: Counting semiring (N, +, *) — counts join results.
COUNTING = Semiring(
    name="counting",
    zero=0,
    one=1,
    add=lambda a, b: a + b,
    mul=lambda a, b: a * b,
)

#: Non-negative reals (R>=0, +, *) — PGM factor marginals (paper Section 1).
REAL = Semiring(
    name="real",
    zero=0.0,
    one=1.0,
    add=lambda a, b: a + b,
    mul=lambda a, b: a * b,
    eq=_float_eq,
)

#: Tropical min-plus semiring — shortest paths / MAP-style minimization.
MIN_PLUS = Semiring(
    name="min-plus",
    zero=math.inf,
    one=0.0,
    add=min,
    mul=lambda a, b: a + b,
    is_idempotent_add=True,
    eq=_float_eq,
)

#: Tropical max-plus semiring.
MAX_PLUS = Semiring(
    name="max-plus",
    zero=-math.inf,
    one=0.0,
    add=max,
    mul=lambda a, b: a + b,
    is_idempotent_add=True,
    eq=_float_eq,
)

#: Max-product (Viterbi) semiring over [0, 1].
MAX_TIMES = Semiring(
    name="max-times",
    zero=0.0,
    one=1.0,
    add=max,
    mul=lambda a, b: a * b,
    is_idempotent_add=True,
    eq=_float_eq,
)

#: GF(2) = F_2 (xor, and) — the field of the matrix-chain problem (Section 6).
GF2 = Semiring(
    name="gf2",
    zero=0,
    one=1,
    add=lambda a, b: (a ^ b) & 1,
    mul=lambda a, b: a & b,
)

#: All built-in semirings keyed by name.
BUILTIN_SEMIRINGS = {
    s.name: s
    for s in (BOOLEAN, COUNTING, REAL, MIN_PLUS, MAX_PLUS, MAX_TIMES, GF2)
}


def get_semiring(name: str) -> Semiring:
    """Look up a built-in semiring by name.

    Raises:
        KeyError: if ``name`` is not one of :data:`BUILTIN_SEMIRINGS`.
    """
    try:
        return BUILTIN_SEMIRINGS[name]
    except KeyError:
        known = ", ".join(sorted(BUILTIN_SEMIRINGS))
        raise KeyError(f"unknown semiring {name!r}; known: {known}") from None


def check_semiring_axioms(semiring: Semiring, samples) -> None:
    """Assert the semiring axioms on a finite sample of domain elements.

    This is a testing utility: it checks commutativity, associativity,
    identities, distributivity and annihilation on every pair/triple drawn
    from ``samples``.

    Raises:
        AssertionError: on the first violated axiom, with a description.
    """
    eq = semiring.eq
    add, mul = semiring.add, semiring.mul
    zero, one = semiring.zero, semiring.one
    samples = list(samples)
    for a in samples:
        assert eq(add(a, zero), a), f"{semiring.name}: a+0 != a for {a!r}"
        assert eq(mul(a, one), a), f"{semiring.name}: a*1 != a for {a!r}"
        assert eq(mul(a, zero), zero), f"{semiring.name}: a*0 != 0 for {a!r}"
        for b in samples:
            assert eq(add(a, b), add(b, a)), f"{semiring.name}: + not commutative"
            assert eq(mul(a, b), mul(b, a)), f"{semiring.name}: * not commutative"
            for c in samples:
                assert eq(add(add(a, b), c), add(a, add(b, c))), (
                    f"{semiring.name}: + not associative"
                )
                assert eq(mul(mul(a, b), c), mul(a, mul(b, c))), (
                    f"{semiring.name}: * not associative"
                )
                assert eq(mul(a, add(b, c)), add(mul(a, b), mul(a, c))), (
                    f"{semiring.name}: * does not distribute over +"
                )
