"""Factor storage backends: the dict data plane vs the columnar data plane.

The engine keeps its *cost model* (semirings, round/bit accounting) separate
from its *data plane* (how factor rows are stored and how the Definition
3.4/3.5 operators execute).  Two data planes exist:

* ``"dict"`` — the seed representation: :class:`~repro.semiring.factor.Factor`
  keeps a Python dict from value tuples to annotations and the operators in
  :mod:`repro.faq.operations` iterate it tuple-by-tuple.  It works for *any*
  hashable domain and *any* semiring, including custom ones.
* ``"columnar"`` — :class:`~repro.semiring.columnar.ColumnarFactor` keeps one
  ``int64`` code array per schema variable (dictionary-encoding arbitrary
  hashable domains) plus one NumPy annotation array, and the operators run
  vectorized (``searchsorted`` hash joins, ``ufunc.reduceat`` grouped
  reductions).  It is available exactly for the builtin numeric semirings
  that have a :class:`VectorProfile` below.

The contract between the two: a ``ColumnarFactor`` *is a* ``Factor`` (same
public surface; the ``rows`` dict is materialized lazily), every operator
produces the same canonical listing representation on both backends, and any
operator that cannot run vectorized — exotic semiring, custom aggregate,
full-domain fold — silently falls back to the dict path.  See
``docs/architecture.md`` for the full contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Tuple

import numpy as np

from .semirings import (
    BOOLEAN,
    BUILTIN_SEMIRINGS,
    COUNTING,
    MAX_PLUS,
    MAX_TIMES,
    MIN_PLUS,
    REAL,
    Semiring,
)

#: The dict (seed) backend name.
BACKEND_DICT = "dict"
#: The columnar (NumPy) backend name.
BACKEND_COLUMNAR = "columnar"
#: All recognized backend names.
BACKENDS: Tuple[str, ...] = (BACKEND_DICT, BACKEND_COLUMNAR)

# |v| <= 1e-12 is exactly when semirings._float_eq(v, 0.0) holds, so the
# columnar zero-drop matches the dict Factor constructor's canonicalization.
_FLOAT_ZERO_TOL = 1e-12


@dataclass(frozen=True)
class VectorProfile:
    """How one builtin numeric semiring maps onto NumPy.

    Attributes:
        semiring_name: Name of the :class:`Semiring` this profile serves.
        dtype: NumPy dtype of the annotation array.
        add: The ⊕ ufunc (must support ``reduceat`` for grouped reduction).
        mul: The ⊗ ufunc.
        is_zero_mask: Vectorized ``semiring.is_zero``: annotation array ->
            boolean mask of entries equal to the additive identity, matching
            the semiring's ``eq`` (floating-point profiles use the same
            absolute tolerance as :func:`repro.semiring.semirings._float_eq`
            against zero).
        zero: The additive identity as a dtype scalar — what dense kernel
            buffers are pre-filled with (absent tuples annihilate under ⊗
            and are neutral under ⊕, so a dense array initialized to
            ``zero`` behaves exactly like the sparse listing).
    """

    semiring_name: str
    dtype: Any
    add: Any
    mul: Any
    is_zero_mask: Callable[[np.ndarray], np.ndarray]
    zero: Any = 0


#: Vector profiles for the standard numeric semirings.  GF(2) and custom
#: semirings are deliberately absent: they take the generic dict path.
VECTOR_PROFILES: Dict[str, VectorProfile] = {
    BOOLEAN.name: VectorProfile(
        BOOLEAN.name, np.bool_, np.logical_or, np.logical_and,
        lambda a: ~a, zero=False,
    ),
    # Counting annotations live in int64 here, while the dict backend's
    # Python ints are unbounded: workloads whose counts can reach 2**63
    # (deep multiplicative joins) must stay on the dict backend, since
    # NumPy integer arithmetic wraps silently on overflow.
    COUNTING.name: VectorProfile(
        COUNTING.name, np.int64, np.add, np.multiply,
        lambda a: a == 0, zero=0,
    ),
    REAL.name: VectorProfile(
        REAL.name, np.float64, np.add, np.multiply,
        lambda a: np.abs(a) <= _FLOAT_ZERO_TOL, zero=0.0,
    ),
    MIN_PLUS.name: VectorProfile(
        MIN_PLUS.name, np.float64, np.minimum, np.add,
        np.isposinf, zero=np.inf,
    ),
    MAX_PLUS.name: VectorProfile(
        MAX_PLUS.name, np.float64, np.maximum, np.add,
        np.isneginf, zero=-np.inf,
    ),
    MAX_TIMES.name: VectorProfile(
        MAX_TIMES.name, np.float64, np.maximum, np.multiply,
        lambda a: np.abs(a) <= _FLOAT_ZERO_TOL, zero=0.0,
    ),
}


def supports_columnar(semiring: Semiring) -> bool:
    """True when ``semiring`` can back a :class:`ColumnarFactor`.

    Keyed by *identity*, not just name: a custom semiring that reuses a
    builtin name (but different operators) stays on the dict path.
    """
    return (
        semiring.name in VECTOR_PROFILES
        and BUILTIN_SEMIRINGS.get(semiring.name) is semiring
    )


def profile_for(semiring: Semiring) -> VectorProfile:
    """The vector profile of a supported semiring.

    Raises:
        ValueError: if the semiring has no columnar support.
    """
    if not supports_columnar(semiring):
        raise ValueError(
            f"semiring {semiring.name!r} has no columnar vector profile; "
            f"supported: {sorted(VECTOR_PROFILES)}"
        )
    return VECTOR_PROFILES[semiring.name]


def validate_backend(backend: str) -> str:
    """Check a backend name, returning it unchanged.

    Raises:
        ValueError: on an unknown backend name.
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; known: {', '.join(BACKENDS)}"
        )
    return backend


def to_backend(factor, backend: str):
    """Convert ``factor`` to the requested storage backend.

    Conversion to ``"columnar"`` is *graceful*: a factor over a semiring
    without a vector profile (GF(2), custom aggregates, ...) — or whose
    integer annotations exceed the int64 range of the columnar profile —
    is returned unchanged, so a mixed query degrades to the dict path per
    factor rather than failing.

    Raises:
        ValueError: on an unknown backend name.
    """
    validate_backend(backend)
    from .columnar import ColumnarFactor  # deferred: columnar builds on us

    if backend == BACKEND_COLUMNAR:
        if isinstance(factor, ColumnarFactor):
            return factor
        if not supports_columnar(factor.semiring):
            return factor
        try:
            return ColumnarFactor.from_factor(factor)
        except OverflowError:
            # Unbounded Python-int counts that do not fit int64: the dict
            # backend is the only exact representation.
            return factor
    if isinstance(factor, ColumnarFactor):
        return factor.to_dict_factor()
    return factor


def backend_of(factor) -> str:
    """The backend name a factor instance is stored in.

    Function-form convenience over the ``Factor.backend`` property (one
    source of truth: this just reads it).
    """
    return factor.backend
