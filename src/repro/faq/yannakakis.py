"""Yannakakis-style BCQ evaluation via semijoin programs.

The paper's upper bounds repeatedly cast BCQ sub-problems as semijoin
programs (Examples 2.1–2.2, footnote 11); this module provides the
centralized reference: a bottom-up semijoin pass over a join tree decides
an acyclic BCQ, and the classic full reducer (bottom-up + top-down)
removes every dangling tuple.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..decomposition import GHD, best_gyo_ghd
from ..hypergraph import is_acyclic
from ..semiring import BOOLEAN, Factor
from .message_passing import assign_factors_to_ghd
from .operations import multi_join, semijoin
from .plan import SOLVER_COMPILED, validate_solver
from .query import FAQQuery


def _boolean_locals(query: FAQQuery, tree: GHD) -> Dict[str, Optional[Factor]]:
    """Per-node joined Boolean factor (None for structural nodes)."""
    placement = assign_factors_to_ghd(query, tree)
    locals_: Dict[str, Optional[Factor]] = {}
    for node_id, parts in placement.items():
        if parts:
            boolean_parts = [
                p if p.is_boolean() else p.with_semiring(BOOLEAN) for p in parts
            ]
            locals_[node_id] = multi_join(boolean_parts)
        else:
            locals_[node_id] = None
    return locals_


def solve_bcq_yannakakis(
    query: FAQQuery,
    ghd: Optional[GHD] = None,
    backend: Optional[str] = None,
    solver: Optional[str] = None,
) -> bool:
    """Decide a Boolean Conjunctive Query with one bottom-up semijoin pass.

    Args:
        query: A BCQ (free variables are ignored; annotations are lifted to
            Boolean if needed).
        ghd: Optional join tree; defaults to the best GYO-GHD.
        backend: Optional storage backend override (``"dict"`` or
            ``"columnar"``) applied to the factors for this solve only;
            ``None`` keeps the query's own backend.
        solver: ``"operator"`` (default) or ``"compiled"``; the compiled
            semijoin program trades the operator path's early exits for a
            cached plan (an empty factor semijoins everything above it
            empty, so the answers agree).

    Returns:
        True iff the natural join of all relations is non-empty.

    Raises:
        ValueError: if ``H`` is cyclic and no GHD is supplied (Yannakakis
            requires a join tree; the protocols handle cyclic cores by the
            trivial protocol instead).
    """
    solver = validate_solver(solver)
    if backend is not None:
        query = query.with_backend(backend)
    if ghd is None and not is_acyclic(query.hypergraph):
        raise ValueError(
            "Yannakakis requires an acyclic query (or an explicit GHD)"
        )
    if solver == SOLVER_COMPILED:
        from .executor import execute_plan
        from .plan import plan_yannakakis

        plan = plan_yannakakis(query, ghd)
        if plan.output is None:
            return True
        return len(execute_plan(plan, query)) > 0
    if ghd is None:
        ghd = best_gyo_ghd(query.hypergraph)
    locals_ = _boolean_locals(query, ghd)

    reduced: Dict[str, Optional[Factor]] = {}
    for node in ghd.postorder():
        current = locals_[node.node_id]
        for child_id in node.children:
            child_factor = reduced[child_id]
            if child_factor is None:
                continue
            if len(child_factor) == 0:
                return False
            if current is not None:
                current = semijoin(current, child_factor)
            else:
                # Structural node: forward the child's projection upward by
                # treating the child factor itself as the local content.
                current = child_factor
        reduced[node.node_id] = current
        if current is not None and len(current) == 0:
            return False
    root_factor = reduced[ghd.root_id]
    return root_factor is None or len(root_factor) > 0


def full_reducer(
    query: FAQQuery,
    ghd: Optional[GHD] = None,
    backend: Optional[str] = None,
) -> Dict[str, Factor]:
    """Run the classic two-pass full reducer over the join tree.

    Args:
        query: A BCQ as in :func:`solve_bcq_yannakakis`.
        ghd: Optional join tree; defaults to the best GYO-GHD.
        backend: Optional storage backend override for this run.

    Returns:
        A mapping node_id -> globally consistent Boolean factor: every
        remaining tuple participates in at least one full join result.

    Raises:
        ValueError: as in :func:`solve_bcq_yannakakis` for cyclic queries,
        or if some GHD node holds no factor (full reduction needs content
        at every node).
    """
    if backend is not None:
        query = query.with_backend(backend)
    if ghd is None:
        if not is_acyclic(query.hypergraph):
            raise ValueError("full_reducer requires an acyclic query")
        ghd = best_gyo_ghd(query.hypergraph)
    locals_ = _boolean_locals(query, ghd)
    if any(v is None for v in locals_.values()):
        empty = sorted(k for k, v in locals_.items() if v is None)
        raise ValueError(f"GHD nodes without factors: {empty}")

    state: Dict[str, Factor] = {k: v for k, v in locals_.items()}
    # Bottom-up semijoins.
    for node in ghd.postorder():
        for child_id in node.children:
            state[node.node_id] = semijoin(state[node.node_id], state[child_id])
    # Top-down semijoins.
    for node in ghd.preorder():
        for child_id in node.children:
            state[child_id] = semijoin(state[child_id], state[node.node_id])
    return state
