"""Variable-elimination FAQ solver (InsideOut-style).

Eliminates bound variables one at a time: all factors mentioning the
variable are joined and the variable is aggregated out of the combined
factor.  For FAQ-SS (one semiring aggregate everywhere) any elimination
order is valid (Theorem G.1, condition 1) and a structure-aware order is
chosen; for mixed-operator queries the listed right-to-left order is
respected so correctness never depends on operator commutation.

``solver="compiled"`` lowers the same elimination into a cached
:class:`~repro.faq.plan.QueryPlan` (each join+marginalize step fused into
one kernel) and runs it on the columnar executor — byte-identical answers,
one plan compilation per query structure.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..semiring import Factor
from .operations import marginalize, multi_join, project
from .plan import SOLVER_COMPILED, validate_solver
from .query import FAQQuery


def greedy_elimination_order(query: FAQQuery) -> Tuple[str, ...]:
    """A min-degree-style order over the bound variables.

    Repeatedly picks the bound variable whose elimination joins the fewest
    factors (ties broken by smaller union schema, then name) — the classic
    heuristic that recovers a perfect elimination order on acyclic queries.

    Costs are maintained *incrementally*: eliminating a variable only
    changes the cost of variables sharing a schema with it, so just those
    are recomputed instead of every cost against every schema per pick
    (the old O(V²·F) loop).  The produced order is identical.
    """
    schemas: Dict[int, Set[str]] = {
        i: set(f.schema) for i, f in enumerate(query.factors.values())
    }
    touching_ids: Dict[str, Set[int]] = {}
    for sid, schema in schemas.items():
        for var in schema:
            touching_ids.setdefault(var, set()).add(sid)
    remaining = set(query.bound_vars)

    def cost(var: str) -> Tuple[int, int, str]:
        ids = touching_ids.get(var, ())
        merged: Set[str] = set()
        for sid in ids:
            merged |= schemas[sid]
        return (len(ids), len(merged), str(var))

    costs = {var: cost(var) for var in remaining}
    order: List[str] = []
    next_id = len(schemas)
    while remaining:
        var = min(remaining, key=costs.__getitem__)
        order.append(var)
        remaining.discard(var)
        ids = touching_ids.pop(var, set())
        merged: Set[str] = set()
        for sid in ids:
            merged |= schemas.pop(sid)
        merged.discard(var)
        if ids:
            sid = next_id
            next_id += 1
            schemas[sid] = merged
            for other in merged:
                touching_ids[other] -= ids
                touching_ids[other].add(sid)
            # Only variables that shared a schema with ``var`` changed.
            for other in merged & remaining:
                costs[other] = cost(other)
    return tuple(order)


def _resolve_order(
    query: FAQQuery, order: Optional[Sequence[str]]
) -> Optional[Tuple[str, ...]]:
    """Validate a caller-supplied order (``None`` passes through).

    Raises:
        ValueError: if the order does not cover the bound variables, or a
            custom order is supplied for a mixed-operator query
            (reordering is only sound for FAQ-SS).
    """
    if order is None:
        return None
    order = tuple(order)
    if set(order) != query.bound_vars:
        raise ValueError("order must list exactly the bound variables")
    if not query.is_faq_ss() and order != query.elimination_order():
        raise ValueError(
            "custom elimination orders are only sound for FAQ-SS queries"
        )
    return order


def solve_variable_elimination(
    query: FAQQuery,
    order: Optional[Sequence[str]] = None,
    backend: Optional[str] = None,
    solver: Optional[str] = None,
) -> Factor:
    """Evaluate ``query`` by sequential variable elimination.

    Args:
        query: The FAQ instance.  Every bound variable must occur in at
            least one factor (use :func:`repro.faq.naive.solve_naive` for
            queries with dangling bound variables).
        order: Optional elimination order over the bound variables.  When
            omitted: the listed right-to-left order for mixed-operator
            queries, or :func:`greedy_elimination_order` for FAQ-SS.
        backend: Optional storage backend override (``"dict"`` or
            ``"columnar"``) applied to the factors for this solve only;
            ``None`` keeps the query's own backend.
        solver: ``"operator"`` (default) evaluates operator at a time;
            ``"compiled"`` runs the cached fused plan through
            :func:`repro.faq.executor.execute_plan`.  Answers are
            identical.

    Returns:
        A factor over ``query.free_vars``.

    Raises:
        ValueError: if a bound variable occurs in no factor, or a custom
            ``order`` is supplied for a mixed-operator query (reordering
            is only sound for FAQ-SS).
    """
    solver = validate_solver(solver)
    if backend is not None:
        query = query.with_backend(backend)
    occurs = set()
    for f in query.factors.values():
        occurs |= set(f.schema)
    dangling = query.bound_vars - occurs
    if dangling:
        raise ValueError(
            f"bound variables in no factor: {sorted(dangling, key=str)}; "
            "use solve_naive for such queries"
        )
    order = _resolve_order(query, order)

    if solver == SOLVER_COMPILED:
        from .executor import execute_plan
        from .plan import plan_variable_elimination

        plan = plan_variable_elimination(query, order)
        return execute_plan(plan, query)

    if order is None:
        if query.is_faq_ss():
            order = greedy_elimination_order(query)
        else:
            order = query.elimination_order()

    live: List[Factor] = list(query.factors.values())
    for variable in order:
        touching = [f for f in live if variable in f.schema]
        rest = [f for f in live if variable not in f.schema]
        combined = multi_join(touching)
        aggregate = query.aggregate_for(variable)
        combine = aggregate.resolve(query.semiring)
        full_domain = (
            query.domains[variable] if aggregate.needs_full_domain else None
        )
        reduced = marginalize(combined, variable, combine, full_domain)
        live = rest + [reduced]

    result = multi_join(live)
    if tuple(result.schema) != query.free_vars:
        result = project(result, query.free_vars)
    return result
