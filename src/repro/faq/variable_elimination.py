"""Variable-elimination FAQ solver (InsideOut-style).

Eliminates bound variables one at a time: all factors mentioning the
variable are joined and the variable is aggregated out of the combined
factor.  For FAQ-SS (one semiring aggregate everywhere) any elimination
order is valid (Theorem G.1, condition 1) and a structure-aware order is
chosen; for mixed-operator queries the listed right-to-left order is
respected so correctness never depends on operator commutation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..semiring import Factor
from .operations import marginalize, multi_join, project
from .query import FAQQuery


def greedy_elimination_order(query: FAQQuery) -> Tuple[str, ...]:
    """A min-degree-style order over the bound variables.

    Repeatedly picks the bound variable whose elimination joins the fewest
    factors (ties broken by smaller union schema, then name) — the classic
    heuristic that recovers a perfect elimination order on acyclic queries.
    """
    schemas: List[set] = [set(f.schema) for f in query.factors.values()]
    remaining = set(query.bound_vars)
    order: List[str] = []
    while remaining:

        def cost(var: str) -> Tuple[int, int, str]:
            touching = [s for s in schemas if var in s]
            merged: set = set()
            for s in touching:
                merged |= s
            return (len(touching), len(merged), str(var))

        var = min(remaining, key=cost)
        order.append(var)
        remaining.discard(var)
        touching = [s for s in schemas if var in s]
        schemas = [s for s in schemas if var not in s]
        if touching:
            merged = set()
            for s in touching:
                merged |= s
            merged.discard(var)
            schemas.append(merged)
    return tuple(order)


def solve_variable_elimination(
    query: FAQQuery,
    order: Optional[Sequence[str]] = None,
    backend: Optional[str] = None,
) -> Factor:
    """Evaluate ``query`` by sequential variable elimination.

    Args:
        query: The FAQ instance.  Every bound variable must occur in at
            least one factor (use :func:`repro.faq.naive.solve_naive` for
            queries with dangling bound variables).
        order: Optional elimination order over the bound variables.  When
            omitted: the listed right-to-left order for mixed-operator
            queries, or :func:`greedy_elimination_order` for FAQ-SS.
        backend: Optional storage backend override (``"dict"`` or
            ``"columnar"``) applied to the factors for this solve only;
            ``None`` keeps the query's own backend.

    Returns:
        A factor over ``query.free_vars``.

    Raises:
        ValueError: if a bound variable occurs in no factor, or a custom
            ``order`` is supplied for a mixed-operator query (reordering
            is only sound for FAQ-SS).
    """
    if backend is not None:
        query = query.with_backend(backend)
    occurs = set()
    for f in query.factors.values():
        occurs |= set(f.schema)
    dangling = query.bound_vars - occurs
    if dangling:
        raise ValueError(
            f"bound variables in no factor: {sorted(dangling, key=str)}; "
            "use solve_naive for such queries"
        )

    if order is None:
        if query.is_faq_ss():
            order = greedy_elimination_order(query)
        else:
            order = query.elimination_order()
    else:
        order = tuple(order)
        if set(order) != query.bound_vars:
            raise ValueError("order must list exactly the bound variables")
        if not query.is_faq_ss() and order != query.elimination_order():
            raise ValueError(
                "custom elimination orders are only sound for FAQ-SS queries"
            )

    live: List[Factor] = list(query.factors.values())
    for variable in order:
        touching = [f for f in live if variable in f.schema]
        rest = [f for f in live if variable not in f.schema]
        combined = multi_join(touching)
        aggregate = query.aggregate_for(variable)
        combine = aggregate.resolve(query.semiring)
        full_domain = (
            query.domains[variable] if aggregate.needs_full_domain else None
        )
        reduced = marginalize(combined, variable, combine, full_domain)
        live = rest + [reduced]

    result = multi_join(live)
    if tuple(result.schema) != query.free_vars:
        result = project(result, query.free_vars)
    return result
