"""Compiled FAQ query plans — typed logical DAGs over the factor algebra.

The operator-at-a-time solvers in this package re-derive everything per
call: each ``join``/``marginalize`` re-merges dictionaries, materializes a
full intermediate factor, and ``greedy_elimination_order`` / GHD planning
is recomputed from scratch for every scenario of a lab grid sweep.  This
module is the planning half of the compiled execution layer (mirroring
PR 3's two-plane protocol engine):

* a small op vocabulary — :class:`InputOp`, :class:`JoinOp`,
  :class:`SemijoinOp`, :class:`ProjectOp`, :class:`MarginalizeOp`,
  :class:`AggregateAbsentOp` and the fusion-bearing
  :class:`FusedJoinMarginalizeOp` — each carrying its output slot and
  result schema;
* lowering functions that translate each solver strategy (variable
  elimination, naive, GHD message passing, Yannakakis) into a
  :class:`QueryPlan`, fusing the ubiquitous "join every factor touching
  ``v``, then ⊕-marginalize ``v`` out" step into one op whenever the
  variable's aggregate is the semiring's own ⊕;
* a :class:`PlanCache` keyed by the *structural* signature of the query —
  factor schemas, free variables, bound order, aggregate signature,
  semiring name and storage backend, never the data — so lab grid sweeps
  that vary only seed/N/assignment compile once and reuse the plan
  (including the greedy elimination order baked into it).

Execution lives in :mod:`repro.faq.executor`; the parity contract is that
``execute_plan(plan_for(query), query)`` returns byte-identical answers to
the operator-at-a-time path on every supported query.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..obs.counters import COUNTERS
from .query import FAQQuery

#: Part of every cache key; bump on plan-semantics or op-vocabulary changes
#: so stale entries miss instead of replaying an outdated lowering.
PLAN_VERSION = 1

#: The FAQ solver execution strategies: ``"operator"`` evaluates operator
#: at a time through :mod:`repro.faq.operations`; ``"compiled"`` lowers the
#: query into a :class:`QueryPlan` once and runs it on the fused columnar
#: executor.  Both produce identical answers.
SOLVER_OPERATOR = "operator"
SOLVER_COMPILED = "compiled"
SOLVERS: Tuple[str, ...] = (SOLVER_OPERATOR, SOLVER_COMPILED)


def validate_solver(solver: Optional[str]) -> str:
    """Normalize and check a solver name (``None`` means ``"operator"``).

    Raises:
        ValueError: on an unknown solver name.
    """
    if solver is None:
        return SOLVER_OPERATOR
    if solver not in SOLVERS:
        raise ValueError(
            f"unknown solver {solver!r}; known: {', '.join(SOLVERS)}"
        )
    return solver


# ---------------------------------------------------------------------------
# Plan ops
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PlanOp:
    """One step of a compiled plan.

    Attributes:
        out: Environment slot the result is written to.
        schema: The result factor's schema, in order (lowering tracks the
            exact schema the operator path would produce, so the compiled
            answer matches column-for-column).
    """

    out: int
    schema: Tuple[str, ...]


@dataclass(frozen=True)
class InputOp(PlanOp):
    """Load one of the query's input factors into a slot.

    ``lift_boolean`` marks inputs the strategy reinterprets in the Boolean
    semiring (Yannakakis semijoin programs), mirroring
    ``Factor.with_semiring(BOOLEAN)`` on the operator path.
    """

    factor: str = ""
    lift_boolean: bool = False


@dataclass(frozen=True)
class JoinOp(PlanOp):
    """Natural join of two slots (Definition 3.4)."""

    left: int = -1
    right: int = -1


@dataclass(frozen=True)
class SemijoinOp(PlanOp):
    """Semijoin ``left ⋉ right`` (Definition 3.5)."""

    left: int = -1
    right: int = -1


@dataclass(frozen=True)
class ProjectOp(PlanOp):
    """Projection ``pi_schema`` with ⊕-combined duplicates."""

    source: int = -1


@dataclass(frozen=True)
class MarginalizeOp(PlanOp):
    """Aggregate one bound variable out of a slot.

    The concrete operator (semiring ⊕, a custom semiring aggregate, or a
    full-domain product fold) is resolved from the query at execution
    time, so plans stay pure structure.
    """

    source: int = -1
    variable: Any = None


@dataclass(frozen=True)
class AggregateAbsentOp(PlanOp):
    """Aggregate out a bound variable occurring in no factor (naive solver)."""

    source: int = -1
    variable: Any = None


@dataclass(frozen=True)
class FusedJoinMarginalizeOp(PlanOp):
    """The fused elimination step: join ``sources``, ⊕-marginalize ``variable``.

    This is the hot loop of variable elimination collapsed into one op:
    the executor runs it as a single index-join + sort/``reduceat``
    group-by kernel that never materializes the joined factor.  Lowering
    only emits it when the variable's aggregate is the semiring's own ⊕
    (FAQ-SS semantics); anything else stays an explicit
    :class:`JoinOp`/:class:`MarginalizeOp` sequence.
    """

    sources: Tuple[int, ...] = ()
    variable: Any = None


@dataclass(frozen=True)
class QueryPlan:
    """A lowered, executable query plan.

    Attributes:
        strategy: Which solver semantics the plan encodes
            (``"variable-elimination"``, ``"naive"``, ``"message-passing"``
            or ``"yannakakis"``).
        ops: The steps, in execution (topological) order.
        output: Slot holding the final factor; ``None`` for degenerate
            Yannakakis plans whose join tree carries no factor at the root
            (the solver then answers ``True`` without executing).
        num_slots: Environment size.
        cache_key: The structural signature this plan was cached under
            (``None`` for uncacheable queries, e.g. custom aggregate
            callables or an explicit GHD).
        order: The elimination order baked into a variable-elimination
            plan (informational; already reflected in ``ops``).
    """

    strategy: str
    ops: Tuple[PlanOp, ...]
    output: Optional[int]
    num_slots: int
    cache_key: Optional[str] = None
    order: Tuple[Any, ...] = ()

    @property
    def fused_ops(self) -> int:
        """How many elimination steps were fused."""
        return sum(1 for op in self.ops if isinstance(op, FusedJoinMarginalizeOp))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<QueryPlan {self.strategy} ops={len(self.ops)} "
            f"fused={self.fused_ops} slots={self.num_slots}>"
        )


# ---------------------------------------------------------------------------
# Structural signatures + the plan cache
# ---------------------------------------------------------------------------


def structural_signature(
    query: FAQQuery,
    strategy: str,
    order: Optional[Sequence[Any]] = None,
    default_ghd: bool = True,
) -> Optional[str]:
    """A sha256 content address of everything lowering depends on.

    Covers the factor names and schema *orders* (join output schemas
    follow them), free variables, bound order, per-variable aggregate
    signature, semiring name and storage backend — but never the factor
    contents, domains or seeds, which is what lets a grid sweep over
    seed/N/assignment share one plan.

    Returns ``None`` for uncacheable queries: a custom aggregate
    ``combine`` callable (unhashable semantics) or a caller-supplied GHD.
    """
    if not default_ghd:
        return None
    aggregates = []
    for v in sorted(query.bound_vars, key=repr):
        agg = query.aggregate_for(v)
        if agg.combine is not None:
            return None  # custom callables have no stable identity
        aggregates.append([repr(v), agg.name, agg.kind])
    payload = {
        "version": PLAN_VERSION,
        "strategy": strategy,
        "factors": [
            [name, [repr(v) for v in f.schema]]
            for name, f in query.factors.items()
        ],
        "free_vars": [repr(v) for v in query.free_vars],
        "bound_order": [repr(v) for v in query.bound_order],
        "aggregates": aggregates,
        "semiring": query.semiring.name,
        "backend": query.backend or "native",
        "order": None if order is None else [repr(v) for v in order],
    }
    canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


@dataclass
class PlanCacheStats:
    """Hit/miss counters of a :class:`PlanCache` (reset with the cache)."""

    hits: int = 0
    misses: int = 0
    uncacheable: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class PlanCache:
    """An LRU cache of compiled plans keyed by structural signature.

    Per-process, like any compiled-code cache: lab workers each warm
    their own copy, and a grid sweep in one process compiles each
    structure exactly once.  Thread-safe: the serving plane's async
    front-end and its executor threads share this process's cache, so
    lookup/store/clear hold a lock (plans themselves are immutable and
    shared by reference — two threads racing on a cold key at worst
    compile the identical plan twice, last put wins).
    """

    def __init__(self, maxsize: int = 512) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self._plans: "OrderedDict[str, QueryPlan]" = OrderedDict()
        self._lock = threading.RLock()
        self.stats = PlanCacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def get(self, key: Optional[str]) -> Optional[QueryPlan]:
        """Look up a plan, counting the hit/miss."""
        if key is None:
            with self._lock:
                self.stats.uncacheable += 1
            COUNTERS.increment("plan_cache.uncacheable")
            return None
        COUNTERS.increment("plan_cache.lookups")
        with self._lock:
            plan = self._plans.get(key)
            if plan is None:
                self.stats.misses += 1
                COUNTERS.increment("plan_cache.miss")
                return None
            self._plans.move_to_end(key)
            self.stats.hits += 1
        COUNTERS.increment("plan_cache.hit")
        return plan

    def put(self, key: Optional[str], plan: QueryPlan) -> None:
        """Store a plan (no-op for uncacheable keys), evicting LRU."""
        if key is None:
            return
        with self._lock:
            self._plans[key] = plan
            self._plans.move_to_end(key)
            while len(self._plans) > self.maxsize:
                self._plans.popitem(last=False)

    def clear(self) -> None:
        """Drop every plan and reset the counters."""
        with self._lock:
            self._plans.clear()
            self.stats = PlanCacheStats()


#: The process-wide plan cache every ``solver="compiled"`` entry point uses.
PLAN_CACHE = PlanCache()


# ---------------------------------------------------------------------------
# Lowering
# ---------------------------------------------------------------------------


class _Builder:
    """Accumulates ops and allocates slots during lowering."""

    def __init__(self) -> None:
        self.ops: List[PlanOp] = []
        self._next = 0

    def slot(self) -> int:
        s = self._next
        self._next += 1
        return s

    def emit(self, op: PlanOp) -> int:
        self.ops.append(op)
        return op.out

    @property
    def num_slots(self) -> int:
        return self._next


def _merged_schema(a: Sequence[Any], b: Sequence[Any]) -> Tuple[Any, ...]:
    return tuple(a) + tuple(v for v in b if v not in a)


def _multi_join(
    b: _Builder, parts: Sequence[Tuple[int, Tuple[Any, ...]]]
) -> Tuple[int, Tuple[Any, ...]]:
    """Lower ``multi_join``: left-to-right pairwise joins."""
    if not parts:
        raise ValueError("multi_join requires at least one factor")
    slot, schema = parts[0]
    for other_slot, other_schema in parts[1:]:
        schema = _merged_schema(schema, other_schema)
        slot = b.emit(JoinOp(b.slot(), schema, left=slot, right=other_slot))
    return slot, schema


def _is_plain_sum(query: FAQQuery, variable: Any) -> bool:
    """True when ``variable``'s aggregate is the semiring's own ⊕ —
    the precondition for emitting a :class:`FusedJoinMarginalizeOp`."""
    agg = query.aggregate_for(variable)
    return agg.kind == "semiring" and agg.combine is None


def _eliminate(
    b: _Builder,
    query: FAQQuery,
    variable: Any,
    parts: Sequence[Tuple[int, Tuple[Any, ...]]],
) -> Tuple[int, Tuple[Any, ...]]:
    """Lower one elimination step: join ``parts``, marginalize ``variable``.

    Fuses into one op for plain-⊕ variables; otherwise an explicit
    join-then-marginalize sequence (custom semiring aggregates and
    full-domain product folds keep their operator semantics).
    """
    joined_schema: Tuple[Any, ...] = ()
    for _, schema in parts:
        joined_schema = _merged_schema(joined_schema, schema)
    out_schema = tuple(v for v in joined_schema if v != variable)
    if _is_plain_sum(query, variable):
        slot = b.emit(
            FusedJoinMarginalizeOp(
                b.slot(), out_schema,
                sources=tuple(s for s, _ in parts), variable=variable,
            )
        )
        return slot, out_schema
    slot, schema = _multi_join(b, parts)
    slot = b.emit(
        MarginalizeOp(b.slot(), out_schema, source=slot, variable=variable)
    )
    return slot, out_schema


def _load_inputs(
    b: _Builder, query: FAQQuery, lift_boolean: bool = False
) -> Dict[str, Tuple[int, Tuple[Any, ...]]]:
    """Emit one :class:`InputOp` per query factor, in listing order."""
    loaded = {}
    for name, factor in query.factors.items():
        slot = b.emit(
            InputOp(
                b.slot(), tuple(factor.schema),
                factor=name, lift_boolean=lift_boolean,
            )
        )
        loaded[name] = (slot, tuple(factor.schema))
    return loaded


def _finish(
    b: _Builder,
    query: FAQQuery,
    slot: int,
    schema: Tuple[Any, ...],
) -> int:
    """Project onto the query's free variables when the order differs."""
    if schema != query.free_vars:
        slot = b.emit(
            ProjectOp(b.slot(), tuple(query.free_vars), source=slot)
        )
    return slot


def lower_variable_elimination(
    query: FAQQuery, order: Sequence[Any]
) -> QueryPlan:
    """Lower InsideOut-style variable elimination over ``order``.

    Mirrors :func:`repro.faq.variable_elimination.solve_variable_elimination`
    step for step (the caller resolves and validates the order).
    """
    b = _Builder()
    live = list(_load_inputs(b, query).values())
    for variable in order:
        touching = [(s, sch) for s, sch in live if variable in sch]
        rest = [(s, sch) for s, sch in live if variable not in sch]
        slot, schema = _eliminate(b, query, variable, touching)
        live = rest + [(slot, schema)]
    slot, schema = _multi_join(b, live)
    slot = _finish(b, query, slot, schema)
    return QueryPlan(
        strategy="variable-elimination",
        ops=tuple(b.ops),
        output=slot,
        num_slots=b.num_slots,
        order=tuple(order),
    )


def lower_naive(query: FAQQuery) -> QueryPlan:
    """Lower the naive solver: materialize the full join, aggregate in order.

    Deliberately unfused — the naive strategy is the semantic ground
    truth, so its plan keeps the join-then-aggregate shape literal.
    """
    b = _Builder()
    loaded = list(_load_inputs(b, query).values())
    slot, schema = _multi_join(b, loaded)
    for variable in query.elimination_order():
        if variable in schema:
            schema = tuple(v for v in schema if v != variable)
            slot = b.emit(
                MarginalizeOp(b.slot(), schema, source=slot, variable=variable)
            )
        else:
            slot = b.emit(
                AggregateAbsentOp(
                    b.slot(), schema, source=slot, variable=variable
                )
            )
    slot = _finish(b, query, slot, schema)
    return QueryPlan(
        strategy="naive",
        ops=tuple(b.ops),
        output=slot,
        num_slots=b.num_slots,
    )


def _ghd_placement_names(query: FAQQuery, ghd) -> Dict[str, List[str]]:
    """Factor *names* per GHD node (the name-level twin of
    :func:`repro.faq.message_passing.assign_factors_to_ghd`)."""
    placement: Dict[str, List[str]] = {node_id: [] for node_id in ghd.nodes}
    for name in query.factors:
        home = ghd.covering_node(name)
        if home is None:
            edge = query.hypergraph.edge(name)
            home = next(
                (
                    node.node_id
                    for node in ghd.nodes.values()
                    if edge <= node.chi
                ),
                None,
            )
        if home is None:
            raise ValueError(f"hyperedge {name!r} is covered by no GHD node")
        placement[home].append(name)
    return placement


def lower_message_passing(query: FAQQuery, ghd) -> QueryPlan:
    """Lower the Theorem G.3 upward pass over ``ghd``.

    Mirrors :func:`repro.faq.message_passing.solve_message_passing`: each
    node joins its local factors with child messages, pushes down the
    aggregates of subtree-private bound variables (fused when they are
    plain ⊕), and the root finishes the remaining bound variables in
    listed order.
    """
    b = _Builder()
    loaded = _load_inputs(b, query)
    placement = _ghd_placement_names(query, ghd)
    free = set(query.free_vars)
    listed = query.elimination_order()

    messages: Dict[str, List[Tuple[int, Tuple[Any, ...]]]] = {
        node_id: [] for node_id in ghd.nodes
    }
    root_id = ghd.root_id
    output: Optional[Tuple[int, Tuple[Any, ...]]] = None
    for node in ghd.postorder():
        parts = [loaded[name] for name in placement[node.node_id]]
        parts += messages[node.node_id]
        if node.node_id == root_id:
            if not parts:
                raise ValueError("root received no factors; query is empty")
            slot, schema = _multi_join(b, parts)
            for variable in listed:
                if variable in schema and variable not in free:
                    schema = tuple(v for v in schema if v != variable)
                    slot = b.emit(
                        MarginalizeOp(
                            b.slot(), schema, source=slot, variable=variable
                        )
                    )
            missing_free = free - set(schema)
            if missing_free:
                raise ValueError(
                    "free variables not available at the root (Appendix G.5 "
                    f"restriction): {sorted(missing_free, key=str)}"
                )
            output = (slot, schema)
            continue
        if not parts:
            continue  # structural node with nothing to forward
        parent_bag = ghd.nodes[node.parent].chi
        keep = set(parent_bag) | free
        local_schema: Tuple[Any, ...] = ()
        for _, schema in parts:
            local_schema = _merged_schema(local_schema, schema)
        private = [v for v in local_schema if v not in keep]
        if not private:
            slot, schema = _multi_join(b, parts)
        else:
            ordered = [v for v in listed if v in private]
            slot, schema = _eliminate(b, query, ordered[0], parts)
            for variable in ordered[1:]:
                slot, schema = _eliminate(b, query, variable, [(slot, schema)])
        messages[node.parent].append((slot, schema))

    assert output is not None
    slot = _finish(b, query, output[0], output[1])
    return QueryPlan(
        strategy="message-passing",
        ops=tuple(b.ops),
        output=slot,
        num_slots=b.num_slots,
    )


def lower_yannakakis(query: FAQQuery, ghd) -> QueryPlan:
    """Lower the bottom-up Yannakakis semijoin pass over ``ghd``.

    Pure dataflow — the operator path's early exits on empty factors are
    shortcuts to the same answer (an empty factor semijoins everything
    above it empty), so the plan's root factor decides the BCQ exactly.
    """
    b = _Builder()
    loaded = _load_inputs(b, query, lift_boolean=True)
    placement = _ghd_placement_names(query, ghd)

    reduced: Dict[str, Optional[Tuple[int, Tuple[Any, ...]]]] = {}
    for node in ghd.postorder():
        names = placement[node.node_id]
        current = _multi_join(b, [loaded[n] for n in names]) if names else None
        for child_id in node.children:
            child = reduced[child_id]
            if child is None:
                continue
            if current is not None:
                current = (
                    b.emit(
                        SemijoinOp(
                            b.slot(), current[1],
                            left=current[0], right=child[0],
                        )
                    ),
                    current[1],
                )
            else:
                # Structural node: forward the child factor upward.
                current = child
        reduced[node.node_id] = current
    root = reduced[ghd.root_id]
    return QueryPlan(
        strategy="yannakakis",
        ops=tuple(b.ops),
        output=None if root is None else root[0],
        num_slots=b.num_slots,
    )


# ---------------------------------------------------------------------------
# Cached entry points (what the solvers call)
# ---------------------------------------------------------------------------


def plan_variable_elimination(
    query: FAQQuery, order: Optional[Sequence[Any]] = None
) -> QueryPlan:
    """The (cached) variable-elimination plan for ``query``.

    On a cache hit the greedy elimination order is *not* recomputed — it
    is baked into the cached plan, which is the point of keying plans by
    structure across a grid sweep.
    """
    key = structural_signature(query, "variable-elimination", order=order)
    cached = PLAN_CACHE.get(key)
    if cached is not None:
        return cached
    if order is None:
        if query.is_faq_ss():
            from .variable_elimination import greedy_elimination_order

            resolved: Tuple[Any, ...] = greedy_elimination_order(query)
        else:
            resolved = query.elimination_order()
    else:
        resolved = tuple(order)
    plan = lower_variable_elimination(query, resolved)
    plan = QueryPlan(
        strategy=plan.strategy, ops=plan.ops, output=plan.output,
        num_slots=plan.num_slots, cache_key=key, order=plan.order,
    )
    PLAN_CACHE.put(key, plan)
    return plan


def plan_naive(query: FAQQuery) -> QueryPlan:
    """The (cached) naive-solver plan for ``query``."""
    key = structural_signature(query, "naive")
    cached = PLAN_CACHE.get(key)
    if cached is not None:
        return cached
    plan = lower_naive(query)
    plan = QueryPlan(
        strategy=plan.strategy, ops=plan.ops, output=plan.output,
        num_slots=plan.num_slots, cache_key=key,
    )
    PLAN_CACHE.put(key, plan)
    return plan


def plan_message_passing(query: FAQQuery, ghd=None) -> QueryPlan:
    """The (cached) GHD message-passing plan for ``query``.

    A caller-supplied GHD bypasses the cache (its structure is not part
    of the signature); the default best-GYO-GHD is deterministic per
    hypergraph, so default plans are safely shared.
    """
    key = structural_signature(
        query, "message-passing", default_ghd=ghd is None
    )
    cached = PLAN_CACHE.get(key)
    if cached is not None:
        return cached
    if ghd is None:
        from ..decomposition import best_gyo_ghd

        ghd = best_gyo_ghd(query.hypergraph)
    plan = lower_message_passing(query, ghd)
    plan = QueryPlan(
        strategy=plan.strategy, ops=plan.ops, output=plan.output,
        num_slots=plan.num_slots, cache_key=key,
    )
    PLAN_CACHE.put(key, plan)
    return plan


def plan_yannakakis(query: FAQQuery, ghd=None) -> QueryPlan:
    """The (cached) Yannakakis semijoin-program plan for ``query``."""
    key = structural_signature(query, "yannakakis", default_ghd=ghd is None)
    cached = PLAN_CACHE.get(key)
    if cached is not None:
        return cached
    if ghd is None:
        from ..decomposition import best_gyo_ghd

        ghd = best_gyo_ghd(query.hypergraph)
    plan = lower_yannakakis(query, ghd)
    plan = QueryPlan(
        strategy=plan.strategy, ops=plan.ops, output=plan.output,
        num_slots=plan.num_slots, cache_key=key,
    )
    PLAN_CACHE.put(key, plan)
    return plan
