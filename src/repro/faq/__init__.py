"""The FAQ / FAQ-SS query engine (paper Sections 1, 5 and Appendix G)."""

from .datalog import DatalogSyntaxError, datalog_query, parse_datalog
from .message_passing import (
    assign_factors_to_ghd,
    solve_message_passing,
    upward_pass_message,
)
from .executor import (
    DictionaryPool,
    ExecutionStats,
    execute_plan,
    fused_join_marginalize,
)
from .naive import solve_naive
from .operations import (
    aggregate_absent_variable,
    join,
    marginalize,
    multi_join,
    project,
    scalar,
    scalar_value,
    semijoin,
)
from .plan import (
    PLAN_CACHE,
    SOLVER_COMPILED,
    SOLVER_OPERATOR,
    SOLVERS,
    PlanCache,
    QueryPlan,
    plan_message_passing,
    plan_naive,
    plan_variable_elimination,
    plan_yannakakis,
    structural_signature,
    validate_solver,
)
from .query import (
    PRODUCT,
    SUM,
    Aggregate,
    FAQQuery,
    bcq,
    marginal_query,
    natural_join_query,
)
from .variable_elimination import (
    greedy_elimination_order,
    solve_variable_elimination,
)
from .yannakakis import full_reducer, solve_bcq_yannakakis

__all__ = [
    "parse_datalog",
    "datalog_query",
    "DatalogSyntaxError",
    "FAQQuery",
    "Aggregate",
    "SUM",
    "PRODUCT",
    "bcq",
    "natural_join_query",
    "marginal_query",
    "join",
    "multi_join",
    "semijoin",
    "project",
    "marginalize",
    "aggregate_absent_variable",
    "scalar",
    "scalar_value",
    "solve_naive",
    "solve_variable_elimination",
    "greedy_elimination_order",
    "solve_message_passing",
    "assign_factors_to_ghd",
    "upward_pass_message",
    "solve_bcq_yannakakis",
    "full_reducer",
    "SOLVERS",
    "SOLVER_OPERATOR",
    "SOLVER_COMPILED",
    "validate_solver",
    "QueryPlan",
    "PlanCache",
    "PLAN_CACHE",
    "structural_signature",
    "plan_variable_elimination",
    "plan_naive",
    "plan_message_passing",
    "plan_yannakakis",
    "execute_plan",
    "ExecutionStats",
    "DictionaryPool",
    "fused_join_marginalize",
]
