"""The FAQ / FAQ-SS query engine (paper Sections 1, 5 and Appendix G)."""

from .datalog import DatalogSyntaxError, datalog_query, parse_datalog
from .message_passing import (
    assign_factors_to_ghd,
    solve_message_passing,
    upward_pass_message,
)
from .naive import solve_naive
from .operations import (
    aggregate_absent_variable,
    join,
    marginalize,
    multi_join,
    project,
    scalar,
    scalar_value,
    semijoin,
)
from .query import (
    PRODUCT,
    SUM,
    Aggregate,
    FAQQuery,
    bcq,
    marginal_query,
    natural_join_query,
)
from .variable_elimination import (
    greedy_elimination_order,
    solve_variable_elimination,
)
from .yannakakis import full_reducer, solve_bcq_yannakakis

__all__ = [
    "parse_datalog",
    "datalog_query",
    "DatalogSyntaxError",
    "FAQQuery",
    "Aggregate",
    "SUM",
    "PRODUCT",
    "bcq",
    "natural_join_query",
    "marginal_query",
    "join",
    "multi_join",
    "semijoin",
    "project",
    "marginalize",
    "aggregate_absent_variable",
    "scalar",
    "scalar_value",
    "solve_naive",
    "solve_variable_elimination",
    "greedy_elimination_order",
    "solve_message_passing",
    "assign_factors_to_ghd",
    "upward_pass_message",
    "solve_bcq_yannakakis",
    "full_reducer",
]
