"""Naive FAQ solver: materialize the full join, then aggregate in order.

This is the semantic ground truth for every other solver: by definition the
FAQ answer is the aggregate sequence applied right-to-left to the product
``⊗_e f_e``, and joining all factors materializes exactly that product
(absent tuples carry the annihilating zero and may be omitted from the
listing — the one subtlety is product aggregates, which
:func:`repro.faq.operations.marginalize` handles by folding over the full
domain).
"""

from __future__ import annotations

from ..semiring import Factor
from .operations import (
    aggregate_absent_variable,
    marginalize,
    multi_join,
    project,
)
from .plan import SOLVER_COMPILED, validate_solver
from .query import FAQQuery


def solve_naive(
    query: FAQQuery,
    backend: str | None = None,
    solver: str | None = None,
) -> Factor:
    """Evaluate ``query`` by brute force.

    Args:
        query: The FAQ instance.
        backend: Optional storage backend override (``"dict"`` or
            ``"columnar"``) applied to the factors for this solve only;
            ``None`` keeps the query's own backend.
        solver: ``"operator"`` (default) or ``"compiled"`` — the compiled
            plan keeps the naive join-then-aggregate shape literal (it is
            the semantic ground truth, so nothing is fused), but benefits
            from dictionary interning and plan caching.

    Returns:
        A factor over ``query.free_vars`` (zero-arity for BCQ; read it with
        :func:`repro.faq.operations.scalar_value`).
    """
    solver = validate_solver(solver)
    if backend is not None:
        query = query.with_backend(backend)
    if solver == SOLVER_COMPILED:
        from .executor import execute_plan
        from .plan import plan_naive

        return execute_plan(plan_naive(query), query)
    joined = multi_join(query.factors.values(), name="joined")
    for variable in query.elimination_order():
        aggregate = query.aggregate_for(variable)
        combine = aggregate.resolve(query.semiring)
        if variable in joined.schema:
            full_domain = (
                query.domains[variable] if aggregate.needs_full_domain else None
            )
            joined = marginalize(joined, variable, combine, full_domain)
        else:
            joined = aggregate_absent_variable(
                joined,
                combine,
                len(query.domains[variable]),
                aggregate.needs_full_domain,
            )
    # Order the output schema as the query requests.
    if tuple(joined.schema) != query.free_vars:
        joined = project(joined, query.free_vars)
    return joined
