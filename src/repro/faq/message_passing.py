"""GHD message-passing FAQ solver — the upward pass of Theorem G.3.

Evaluates an FAQ on a GYO-GHD bottom-up: each node joins its local factors
with the messages of its children, *pushes down* the aggregates of the
variables private to its subtree (Corollary G.2 justifies this for any mix
of semiring and product aggregates, because the pushed-down variables occur
in no other factor), and sends the reduced factor to its parent.  The root
finishes the remaining bound variables in listed order.

This is exactly the computation the distributed protocol of Algorithm 3 /
Appendix G.3 performs over the network; the centralized version here is
both a solver in its own right (O~(N) for acyclic H, Theorem G.3) and the
per-player "internal computation" of the simulator protocols.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..decomposition import GHD, best_gyo_ghd
from ..semiring import Factor
from .operations import marginalize, multi_join, project
from .plan import SOLVER_COMPILED, validate_solver
from .query import FAQQuery


def assign_factors_to_ghd(query: FAQQuery, ghd: GHD) -> Dict[str, List[Factor]]:
    """Map each hyperedge's factor to a GHD node covering it.

    Prefers the node whose ``lambda`` names the edge; falls back to any
    node whose bag contains the edge.

    Raises:
        ValueError: if some hyperedge is covered by no node (an invalid
            GHD for this query).
    """
    placement: Dict[str, List[Factor]] = {node_id: [] for node_id in ghd.nodes}
    for name, factor in query.factors.items():
        home = ghd.covering_node(name)
        if home is None:
            edge = query.hypergraph.edge(name)
            home = next(
                (
                    node.node_id
                    for node in ghd.nodes.values()
                    if edge <= node.chi
                ),
                None,
            )
        if home is None:
            raise ValueError(f"hyperedge {name!r} is covered by no GHD node")
        placement[home].append(factor)
    return placement


def upward_pass_message(
    query: FAQQuery,
    local: Factor,
    keep_vars: set,
) -> Factor:
    """Reduce ``local`` to the variables in ``keep_vars``.

    Variables outside ``keep_vars`` are private to the current subtree
    (running intersection property) and their aggregates are pushed down
    here, respecting the listed right-to-left order among themselves.
    """
    private = [v for v in local.schema if v not in keep_vars]
    if not private:
        return local
    # Respect the listed order among the private variables.
    ordered = [v for v in query.elimination_order() if v in private]
    out = local
    for variable in ordered:
        aggregate = query.aggregate_for(variable)
        combine = aggregate.resolve(query.semiring)
        full_domain = (
            query.domains[variable] if aggregate.needs_full_domain else None
        )
        out = marginalize(out, variable, combine, full_domain)
    return out


def solve_message_passing(
    query: FAQQuery,
    ghd: Optional[GHD] = None,
    backend: Optional[str] = None,
    solver: Optional[str] = None,
) -> Factor:
    """Evaluate ``query`` via the Theorem G.3 upward pass.

    Args:
        query: The FAQ instance.  The paper's restriction applies: free
            variables must be available at the root (``F ⊆ V(C(H))``,
            Appendix G.5); a free variable that would be aggregated on the
            way up raises.
        ghd: Optional decomposition; defaults to the best GYO-GHD.
        backend: Optional storage backend override (``"dict"`` or
            ``"columnar"``) applied to the factors for this solve only;
            ``None`` keeps the query's own backend.
        solver: ``"operator"`` (default) or ``"compiled"``; the compiled
            plan fuses each node's join with the first pushed-down
            ⊕-marginalization and caches the lowered upward pass (the
            default GYO-GHD is then computed once per query structure).

    Returns:
        A factor over ``query.free_vars``.

    Raises:
        ValueError: if a free variable is not contained in the root bag's
            running-intersection cone (the unsupported-free-variable case
            of Appendix G.5).
    """
    solver = validate_solver(solver)
    if backend is not None:
        query = query.with_backend(backend)
    if solver == SOLVER_COMPILED:
        from .executor import execute_plan
        from .plan import plan_message_passing

        return execute_plan(plan_message_passing(query, ghd), query)
    tree = ghd or best_gyo_ghd(query.hypergraph)
    placement = assign_factors_to_ghd(query, tree)
    free = set(query.free_vars)

    messages: Dict[str, List[Factor]] = {node_id: [] for node_id in tree.nodes}
    root_id = tree.root_id
    result: Optional[Factor] = None
    for node in tree.postorder():
        parts = placement[node.node_id] + messages[node.node_id]
        if not parts:
            # A structural node with no factor: contributes the constant 1,
            # i.e. nothing — but it must still forward child messages.
            local = None
        else:
            local = multi_join(parts)
        if node.node_id == root_id:
            if local is None:
                raise ValueError("root received no factors; query is empty")
            # Finish the remaining bound variables in listed order.
            for variable in query.elimination_order():
                if variable in local.schema and variable not in free:
                    aggregate = query.aggregate_for(variable)
                    combine = aggregate.resolve(query.semiring)
                    full_domain = (
                        query.domains[variable]
                        if aggregate.needs_full_domain
                        else None
                    )
                    local = marginalize(local, variable, combine, full_domain)
            missing_free = free - set(local.schema)
            if missing_free:
                raise ValueError(
                    "free variables not available at the root (Appendix G.5 "
                    f"restriction): {sorted(missing_free, key=str)}"
                )
            result = local
            continue
        # Messages keep the parent's bag plus every free variable: only
        # *bound* variables private to the subtree are pushed down
        # (Corollary G.2); free variables ride along to the root.
        parent_bag = tree.nodes[node.parent].chi
        keep = set(parent_bag) | free
        if local is not None:
            message = upward_pass_message(query, local, keep)
            messages[node.parent].append(message)

    assert result is not None
    if tuple(result.schema) != query.free_vars:
        result = project(result, query.free_vars)
    return result
