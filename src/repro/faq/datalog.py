"""Datalog-style query parsing — the paper's query notation.

The paper writes conjunctive queries in Datalog format, e.g.
Example 2.2's ``q() :- R(A,B), S(A,C), T(A,D), U(A,E)``.  This module
parses that notation into a :class:`~repro.hypergraph.Hypergraph` plus the
free-variable tuple (the head's arguments), so paper queries can be typed
verbatim::

    h, free = parse_datalog("q() :- R(A,B), S(A,C), T(A,D), U(A,E)")
    query = datalog_query("q(A) :- R(A,B), S(B,C)", relations, domains)

Repeated relation names get multi-hypergraph suffixes (``R#2``) since a
hyperedge name keys exactly one input function.
"""

from __future__ import annotations

import re
from typing import Any, Dict, Mapping, Sequence, Tuple

from ..hypergraph import Hypergraph
from ..semiring import BOOLEAN, Factor, Semiring
from .query import FAQQuery

_ATOM = re.compile(r"\s*([A-Za-z_][A-Za-z0-9_]*)\s*\(([^()]*)\)\s*")


class DatalogSyntaxError(ValueError):
    """Raised on malformed Datalog query strings."""


def _parse_atom(text: str) -> Tuple[str, Tuple[str, ...]]:
    match = _ATOM.fullmatch(text)
    if match is None:
        raise DatalogSyntaxError(f"malformed atom: {text!r}")
    name = match.group(1)
    args_text = match.group(2).strip()
    if not args_text:
        return name, ()
    args = tuple(a.strip() for a in args_text.split(","))
    if any(not a for a in args):
        raise DatalogSyntaxError(f"empty argument in atom: {text!r}")
    return name, args


def _split_body(body: str) -> list:
    """Split the body on commas that are not inside parentheses."""
    atoms = []
    depth = 0
    current = []
    for ch in body:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth < 0:
                raise DatalogSyntaxError("unbalanced parentheses")
        if ch == "," and depth == 0:
            atoms.append("".join(current))
            current = []
        else:
            current.append(ch)
    if depth != 0:
        raise DatalogSyntaxError("unbalanced parentheses")
    atoms.append("".join(current))
    return [a for a in atoms if a.strip()]


def parse_datalog(query: str) -> Tuple[Hypergraph, Tuple[str, ...]]:
    """Parse ``head(args) :- R(vars), S(vars), ...`` into (H, free vars).

    Body atoms sharing a relation name are disambiguated with ``#i``
    suffixes (self-joins are distinct hyperedges of the multi-hypergraph).
    Every head variable must occur in the body.

    Raises:
        DatalogSyntaxError: on malformed input.
    """
    if ":-" not in query:
        raise DatalogSyntaxError("query must contain ':-'")
    head_text, body_text = query.split(":-", 1)
    _head_name, free_vars = _parse_atom(head_text)
    edges: Dict[str, Tuple[str, ...]] = {}
    seen_names: Dict[str, int] = {}
    for atom_text in _split_body(body_text):
        name, args = _parse_atom(atom_text)
        if not args:
            raise DatalogSyntaxError(
                f"body atom {name!r} has no variables"
            )
        seen_names[name] = seen_names.get(name, 0) + 1
        key = name if seen_names[name] == 1 else f"{name}#{seen_names[name]}"
        if len(set(args)) != len(args):
            raise DatalogSyntaxError(
                f"repeated variable within one atom is unsupported: {atom_text!r}"
            )
        edges[key] = args
    if not edges:
        raise DatalogSyntaxError("query body is empty")
    h = Hypergraph(edges)
    missing = set(free_vars) - h.vertices
    if missing:
        raise DatalogSyntaxError(
            f"head variables not in body: {sorted(missing)}"
        )
    return h, free_vars


def atom_schema(hypergraph: Hypergraph, edge_name: str, query: str) -> Tuple[str, ...]:
    """The argument order of ``edge_name`` as written in ``query``."""
    _h, _free = parse_datalog(query)  # validates
    for atom_text in _split_body(query.split(":-", 1)[1]):
        name, args = _parse_atom(atom_text)
        base = edge_name.split("#", 1)[0]
        if name == base and set(args) == set(hypergraph.edge(edge_name)):
            return args
    raise KeyError(f"atom {edge_name!r} not found in query")


def datalog_query(
    query: str,
    relations: Mapping[str, Factor],
    domains: Mapping[str, Sequence[Any]],
    semiring: Semiring = BOOLEAN,
    name: str | None = None,
) -> FAQQuery:
    """Build an :class:`FAQQuery` from a Datalog string and its relations.

    Args:
        query: e.g. ``"q(A) :- R(A,B), S(B,C)"`` — the head's variables
            become the free variables.
        relations: One factor per body atom key (``R``, ``S``, ``R#2``...),
            with schema matching the atom's variable set.
        domains: Domain per variable.
        semiring: Query semiring (Boolean: the paper's BCQ/CQ semantics).

    Raises:
        DatalogSyntaxError: on malformed query text.
        ValueError: on schema/domain mismatches (from FAQQuery validation).
    """
    hypergraph, free_vars = parse_datalog(query)
    factors = {}
    for edge_name in hypergraph.edge_names:
        if edge_name not in relations:
            raise ValueError(f"no relation supplied for atom {edge_name!r}")
        factor = relations[edge_name]
        if factor.semiring.name != semiring.name:
            factor = factor.with_semiring(semiring)
        factors[edge_name] = factor
    return FAQQuery(
        hypergraph=hypergraph,
        factors=factors,
        domains={v: tuple(domains[v]) for v in hypergraph.vertices},
        free_vars=free_vars,
        semiring=semiring,
        name=name or query.split(":-")[0].strip(),
    )
