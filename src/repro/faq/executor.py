"""Fused columnar execution of compiled FAQ plans.

This is the data-plane half of the compiled solver (planning lives in
:mod:`repro.faq.plan`).  Three mechanisms make it faster than the
operator-at-a-time path while returning byte-identical answers:

* **Shared dictionary interning** — a per-execution
  :class:`DictionaryPool` re-codes every input factor so that all columns
  of one variable share a single dictionary object.  Dictionary encoding
  then happens once per base column (one vectorized ``np.unique`` over
  the concatenated dictionaries) instead of once per operator: every
  downstream join sees aligned code arrays and skips the per-join
  Python-loop dictionary merge entirely (``_merge_dictionaries``
  short-circuits on identity).
* **Kernel fusion** — :func:`fused_join_marginalize` runs the "join all
  factors touching ``v``, then ⊕-marginalize ``v`` out" elimination step
  as chained index joins followed by one sort/``reduceat`` group-by,
  never materializing the joined factor (no intermediate
  :class:`ColumnarFactor`, no re-canonicalization, no dictionary
  merging).  Boolean factors (all annotations ``True`` by listing
  canonicality) additionally skip value arithmetic altogether and use a
  dense scatter for the grouped reduction when the code space is small.
* **Graceful fallback** — any op whose operands are not columnar (or
  whose kernel declines: un-interned dictionaries, potential ``int64``
  overflow, composite-key overflow) executes through the ordinary
  operators in :mod:`repro.faq.operations`, which are always correct.

Float caveat: for exact semirings (boolean, counting, GF(2)-free
workloads) and idempotent tropical semirings the fused kernel is
*bitwise* identical to join-then-marginalize.  For ``real``/``max-times``
with arbitrary floats the ⊕-fold order can differ in the last ulp (the
same caveat the columnar backend already carries versus the dict
backend); the paper's Table 1 scenarios are all exact.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .. import kernels
from ..obs.counters import COUNTERS
from ..obs.trace import active_tracer
from ..semiring import Factor, Semiring
from ..semiring.backend import profile_for, supports_columnar
from ..semiring.columnar import (
    ColumnarFactor,
    Dictionary,
    _INT64_MAX,
    _composite_key,
    _empty_like,
    _exact_array,
    _int_values_exceed,
    _match_indices,
    _sort_groups,
)
from ..semiring.semirings import BOOLEAN
from . import operations
from .plan import (
    AggregateAbsentOp,
    FusedJoinMarginalizeOp,
    InputOp,
    JoinOp,
    MarginalizeOp,
    PlanOp,
    ProjectOp,
    QueryPlan,
    SemijoinOp,
)

#: Dense grouped reduction is used while the composite code space stays
#: below ``max(4 * rows, _DENSE_CAP)`` — past that, sorting wins.
_DENSE_CAP = 1 << 20


@dataclass
class ExecutionStats:
    """Counters one :func:`execute_plan` call fills in (for tests/benches).

    Attributes:
        ops: Plan ops executed.
        pooled_variables: Variables whose dictionaries were interned.
        fused_vectorized: Fused elimination steps run on the fused kernel.
        fused_fallback: Fused steps that fell back to join+marginalize.
    """

    ops: int = 0
    pooled_variables: int = 0
    fused_vectorized: int = 0
    fused_fallback: int = 0


# ---------------------------------------------------------------------------
# Shared dictionary interning
# ---------------------------------------------------------------------------


def _dictionary_array(d: list) -> Optional[np.ndarray]:
    """A homogeneous array view of a column dictionary, or ``None``.

    Dictionaries produced by the vectorized encoder carry their source
    array (:class:`~repro.semiring.columnar.Dictionary`) — homogeneity is
    then proven by provenance.  Anything else is converted here, with the
    same type discipline as ``_encode_column``: one element type among
    ``int``/``bool``/``str``/``float``, floats without NaN or ``-0.0``
    (both would break exact round-tripping).
    """
    arr = getattr(d, "array", None)
    if arr is not None:
        return arr
    types = set(map(type, d))
    if len(types) != 1:
        return None
    try:
        return _exact_array(next(iter(types)), d)
    except (TypeError, ValueError, OverflowError):
        return None


def _unique_inverse(concat: np.ndarray):
    """``(uniq, inverse)`` of a concatenated column, sort-based.

    One stable argsort (radix for integer dtypes — the dictionaries being
    unioned are each already sorted runs) plus mask arithmetic; the
    inverse doubles as the per-dictionary remap once split back into the
    original segments, which is what lets interning skip a
    ``searchsorted`` per dictionary.  Runs in the active kernel tier
    (:mod:`repro.kernels`).
    """
    return kernels.encode_unique(concat)


def _superset_pool(dicts: Sequence[list], arrays: Sequence[Optional[np.ndarray]]):
    """Pool against the widest dictionary when it contains all the others.

    Filler/full-domain relations make this the common case: their
    dictionary lists the whole active domain, so the union *is* that
    dictionary.  Adopting it as the pool skips the concatenate/sort of
    the general union — and, crucially, the widest dictionary's factors
    keep their code arrays verbatim (identity remap).  Returns ``None``
    when the widest dictionary is unsorted (unknown provenance) or some
    value falls outside it.
    """
    widest = max(range(len(dicts)), key=lambda i: -1 if arrays[i] is None else len(arrays[i]))
    base_dict, base_arr = dicts[widest], arrays[widest]
    if base_arr is None or getattr(base_dict, "array", None) is None:
        return None  # sortedness is only guaranteed by encoder provenance
    top = len(base_arr) - 1
    # Dense integer dictionaries (TRIBES universes, range domains) are a
    # contiguous run: position is then plain subtraction, no binary search.
    contiguous_lo: Optional[int] = None
    if base_arr.dtype.kind in "iu":
        lo, hi = int(base_arr[0]), int(base_arr[top])
        if hi - lo == top:
            contiguous_lo = lo
    remaps: Dict[int, np.ndarray] = {}
    for d, arr in zip(dicts, arrays):
        if d is base_dict:
            continue
        if arr is None or not len(arr):
            remaps[id(d)] = np.empty(0, dtype=np.int64)
            continue
        if contiguous_lo is not None and arr.dtype.kind in "iu":
            if int(arr.min()) < contiguous_lo or int(arr.max()) > contiguous_lo + top:
                return None
            remaps[id(d)] = (arr - contiguous_lo).astype(np.int64, copy=False)
            continue
        pos = np.minimum(np.searchsorted(base_arr, arr), top)
        if not np.array_equal(base_arr[pos], arr):
            return None
        remaps[id(d)] = pos.astype(np.int64, copy=False)
    return base_dict, remaps


def _pool_dictionaries(dicts: Sequence[list]):
    """Union several column dictionaries into one, with per-dict remaps.

    Vectorized — one concatenate + sort-unique over the dictionaries'
    array views, then a ``searchsorted`` remap per dictionary — when every
    dictionary has one (see :func:`_dictionary_array`); mixed element
    types across the dictionaries, or any list without an exact array
    form, fall back to a generic first-appearance loop.  Either way the
    round trip is exact: decoding a remapped code restores the original
    value.

    Returns:
        ``(pooled, remaps)`` where ``remaps[id(d)]`` maps old codes of
        dictionary ``d`` to pooled codes.
    """
    arrays = [_dictionary_array(d) if d else None for d in dicts]
    nonempty = [a for a in arrays if a is not None and len(a)]
    # Concatenation must not change any value's decoded type: unsigned and
    # signed integers may mix (both decode to Python int), but bool/int,
    # int/float or str/numeric promotions would decode differently than
    # the originals, so those combinations take the generic loop.
    kinds = {("i" if a.dtype.kind == "u" else a.dtype.kind) for a in nonempty}
    vectorizable = len(kinds) <= 1 and all(
        a is not None or not d for a, d in zip(arrays, dicts)
    )

    if vectorizable:
        if not nonempty:
            return Dictionary(), {
                id(d): np.empty(0, dtype=np.int64) for d in dicts
            }
        pooled_remaps = _superset_pool(dicts, arrays)
        if pooled_remaps is not None:
            COUNTERS.increment("dict_pool.superset")
            return pooled_remaps
        COUNTERS.increment("dict_pool.merge")
        uniq, inverse = _unique_inverse(np.concatenate(nonempty))
        pooled = Dictionary(uniq.tolist(), array=uniq)
        remaps = {}
        offset = 0
        for d, arr in zip(dicts, arrays):
            if arr is None or not len(arr):
                remaps[id(d)] = np.empty(0, dtype=np.int64)
            else:
                remaps[id(d)] = inverse[offset:offset + len(arr)]
                offset += len(arr)
        return pooled, remaps

    COUNTERS.increment("dict_pool.generic")
    pooled_list: List[Any] = []
    index: Dict[Any, int] = {}
    remaps = {}
    for d in dicts:
        remap = np.empty(len(d), dtype=np.int64)
        for j, value in enumerate(d):
            c = index.get(value)
            if c is None:
                c = len(pooled_list)
                index[value] = c
                pooled_list.append(value)
            remap[j] = c
        remaps[id(d)] = remap
    return pooled_list, remaps


class DictionaryPool:
    """Per-execution dictionary interning: one dictionary per variable.

    After :meth:`intern_factors`, every column of a shared variable
    references the *same* dictionary object, so code arrays are aligned
    across all operators of the execution: joins build composite keys
    directly from the codes and ``_merge_dictionaries`` degenerates to an
    identity remap.  Variables occurring in a single factor are left
    untouched (there is nothing to align).
    """

    def __init__(self) -> None:
        #: variable -> the pooled dictionary every column now shares.
        self.dictionaries: Dict[Any, list] = {}

    def __len__(self) -> int:
        return len(self.dictionaries)

    def intern_factors(
        self, factors: Mapping[str, ColumnarFactor]
    ) -> Dict[str, ColumnarFactor]:
        """Re-code ``factors`` against per-variable pooled dictionaries."""
        by_var: Dict[Any, List[list]] = {}
        for f in factors.values():
            for v, d in zip(f.schema, f.dictionaries):
                by_var.setdefault(v, []).append(d)

        remaps: Dict[Any, Dict[int, np.ndarray]] = {}
        for v, dicts in by_var.items():
            if len(dicts) < 2:
                continue
            distinct = list({id(d): d for d in dicts}.values())
            if len(distinct) == 1:
                self.dictionaries[v] = distinct[0]
                continue
            pooled, var_remaps = _pool_dictionaries(distinct)
            self.dictionaries[v] = pooled
            remaps[v] = var_remaps

        out: Dict[str, ColumnarFactor] = {}
        for name, f in factors.items():
            new_codes = list(f.codes)
            new_dicts = list(f.dictionaries)
            changed = False
            for i, (v, d) in enumerate(zip(f.schema, f.dictionaries)):
                pooled = self.dictionaries.get(v)
                if pooled is None or pooled is d:
                    continue
                new_codes[i] = remaps[v][id(d)][f.codes[i]]
                new_dicts[i] = pooled
                changed = True
            out[name] = (
                ColumnarFactor._from_arrays(
                    f.schema, new_codes, new_dicts, f.values, f.semiring, f.name
                )
                if changed
                else f
            )
        return out


# ---------------------------------------------------------------------------
# The fused elimination kernel
# ---------------------------------------------------------------------------


def _grouped_reduce_columns(
    out_schema: Tuple[Any, ...],
    cols: Mapping[Any, np.ndarray],
    dicts: Mapping[Any, list],
    values: Optional[np.ndarray],
    n: int,
    profile,
    semiring: Semiring,
) -> Optional[ColumnarFactor]:
    """Group loose code columns by ``out_schema`` and ⊕-reduce each group.

    ``values is None`` flags the Boolean all-``True`` fast path: the
    reduction is then pure key deduplication, done densely (scatter into
    a mark array over the composite code space) when the space is small
    and by sort otherwise.
    """
    out_dicts = [dicts[v] for v in out_schema]
    if n == 0:
        return _empty_like(out_schema, out_dicts, semiring, None)
    columns = [cols[v] for v in out_schema]
    cards = [max(len(d), 1) for d in out_dicts]

    if values is None:
        space = 1
        for card in cards:
            space *= card
        key = _composite_key(columns, cards, n)
        if key is not None and space <= max(4 * n, _DENSE_CAP):
            mark = np.zeros(space, dtype=bool)
            mark[key] = True
            out_keys = np.flatnonzero(mark)
            if len(cards) <= 1:
                out_codes: List[np.ndarray] = [out_keys] if cards else []
            else:
                out_codes = []
                rem = out_keys
                for card in reversed(cards):
                    out_codes.append(rem % card)
                    rem = rem // card
                out_codes.reverse()
            reduced = np.ones(len(out_keys), dtype=np.bool_)
        else:
            order, starts = _sort_groups(columns, cards, n)
            representatives = order[starts]
            out_codes = [c[representatives] for c in columns]
            reduced = np.ones(len(starts), dtype=np.bool_)
        return ColumnarFactor._from_arrays(
            out_schema, out_codes, out_dicts, reduced, semiring, None
        )

    if _int_values_exceed(profile, values, _INT64_MAX // n):
        return None
    order, starts = _sort_groups(columns, cards, n)
    reduced = kernels.grouped_reduce(values, order, starts, profile.add)
    representatives = order[starts]
    out_codes = [c[representatives] for c in columns]
    zero = profile.is_zero_mask(reduced)
    if zero.any():
        keep = ~zero
        reduced = reduced[keep]
        out_codes = [c[keep] for c in out_codes]
    return ColumnarFactor._from_arrays(
        out_schema, out_codes, out_dicts, reduced, semiring, None
    )


def fused_join_marginalize(
    factors: Sequence[ColumnarFactor],
    variable: Any,
    out_schema: Sequence[Any],
    semiring: Semiring,
) -> Optional[ColumnarFactor]:
    """Join ``factors`` left to right and ⊕-marginalize ``variable`` out —
    in one pass, without materializing the joined factor.

    Equivalent to ``marginalize(multi_join(factors), variable)`` for the
    semiring's own ⊕ (the only aggregate lowering fuses).  Requires the
    operands' shared-variable dictionaries to be interned (identical
    objects); returns ``None`` whenever it cannot run exactly —
    un-interned dictionaries, composite-key overflow, possible ``int64``
    overflow — and the caller falls back to the unfused operators.
    """
    try:
        profile = profile_for(semiring)
    except ValueError:
        return None
    out_schema = tuple(out_schema)

    # Boolean listings are canonically all-True: skip value arithmetic and
    # reduce by pure key deduplication.
    boolean_mode = profile.dtype is np.bool_ and all(
        bool(f.values.all()) for f in factors
    )

    # Star-center pattern: every factor unary over the eliminated variable
    # itself (the shape every arm elimination leaves behind).  The fused
    # join+⊕ collapses to a dense presence intersection — no sorting, no
    # match expansion.
    if (
        boolean_mode
        and not out_schema
        and len(factors) > 1
        and all(f.schema == (variable,) for f in factors)
    ):
        dictionary = factors[0].dictionaries[0]
        if any(f.dictionaries[0] is not dictionary for f in factors[1:]):
            return None  # not interned: fall back to the unfused operators
        card = max(len(dictionary), 1)
        present = np.zeros(card, dtype=bool)
        if len(factors[0]):
            present[factors[0].codes[0]] = True
        for f in factors[1:]:
            mask = np.zeros(card, dtype=bool)
            if len(f):
                mask[f.codes[0]] = True
            present &= mask
        values_out = np.ones(1 if present.any() else 0, dtype=np.bool_)
        return ColumnarFactor._from_arrays(
            (), [], [], values_out, semiring, None
        )

    first = factors[0]
    schema: List[Any] = list(first.schema)
    cols: Dict[Any, np.ndarray] = dict(zip(first.schema, first.codes))
    dicts: Dict[Any, list] = dict(zip(first.schema, first.dictionaries))
    values: Optional[np.ndarray] = None if boolean_mode else first.values
    n = len(first)

    for f in factors[1:]:
        shared = [v for v in schema if v in f.schema]
        f_dicts = dict(zip(f.schema, f.dictionaries))
        if any(dicts[v] is not f_dicts[v] for v in shared):
            return None  # not interned: the unfused path merges correctly
        if (
            values is not None
            and np.issubdtype(profile.dtype, np.integer)
            and n
            and len(f)
        ):
            left_max = int(np.abs(values).max())
            right_max = int(np.abs(f.values).max())
            if left_max and right_max and left_max > _INT64_MAX // right_max:
                return None
        cards = [len(dicts[v]) for v in shared]
        left_key = _composite_key([cols[v] for v in shared], cards, n)
        right_key = _composite_key(
            [f.codes[f.column_index(v)] for v in shared], cards, len(f)
        )
        if left_key is None or right_key is None:
            return None
        left_idx, right_idx = _match_indices(left_key, right_key)
        if values is not None:
            joined = profile.mul(values[left_idx], f.values[right_idx])
            zero = profile.is_zero_mask(joined)
            if zero.any():
                keep = ~zero
                left_idx, right_idx = left_idx[keep], right_idx[keep]
                joined = joined[keep]
            values = joined
        new_cols = {v: cols[v][left_idx] for v in schema}
        for i, w in enumerate(f.schema):
            if w not in new_cols:
                new_cols[w] = f.codes[i][right_idx]
                dicts[w] = f.dictionaries[i]
                schema.append(w)
        cols = new_cols
        n = len(left_idx)

    return _grouped_reduce_columns(
        out_schema, cols, dicts, values, n, profile, semiring
    )


# ---------------------------------------------------------------------------
# Plan execution
# ---------------------------------------------------------------------------


def _lift_boolean(factor: Factor) -> Factor:
    """Reinterpret a factor in the Boolean semiring, staying columnar.

    Columnar factors keep their (possibly pooled) codes and dictionaries
    — only the annotation array is replaced by all-``True`` — so interning
    survives the lift; everything else goes through ``with_semiring``.
    """
    if isinstance(factor, ColumnarFactor):
        return ColumnarFactor._from_arrays(
            factor.schema,
            factor.codes,
            factor.dictionaries,
            np.ones(len(factor), dtype=np.bool_),
            BOOLEAN,
            factor.name,
        )
    return factor.with_semiring(BOOLEAN)


def execute_plan(
    plan: QueryPlan,
    query,
    stats: Optional[ExecutionStats] = None,
) -> Factor:
    """Run a compiled plan against the query's factors.

    Inputs are pool-interned once when the whole query is columnar over a
    supported semiring; each op then prefers its vectorized kernel and
    falls back to the generic operators in :mod:`repro.faq.operations`
    whenever a kernel declines.  Returns the factor in the plan's output
    slot (over the query's free variables, like every solver).

    Raises:
        ValueError: if the plan has no output slot (degenerate Yannakakis
            plans are answered by the solver without execution).
    """
    if plan.output is None:
        raise ValueError("plan has no output slot to execute")
    semiring = query.semiring
    factors: Mapping[str, Factor] = query.factors
    columnar = supports_columnar(semiring) and all(
        isinstance(f, ColumnarFactor) for f in factors.values()
    )
    if columnar:
        tracer = active_tracer()
        pool = DictionaryPool()
        intern_start = time.perf_counter()
        inputs: Mapping[str, Factor] = pool.intern_factors(factors)
        if tracer is not None:
            tracer.phase_timer("intern", time.perf_counter() - intern_start)
        if stats is not None:
            stats.pooled_variables = len(pool)
    else:
        inputs = factors

    env: List[Optional[Factor]] = [None] * plan.num_slots
    for op in plan.ops:
        if stats is not None:
            stats.ops += 1
        env[op.out] = _run_op(op, env, inputs, query, columnar, stats)
    result = env[plan.output]
    assert result is not None
    return result


def _run_op(
    op: PlanOp,
    env: List[Optional[Factor]],
    inputs: Mapping[str, Factor],
    query,
    columnar: bool,
    stats: Optional[ExecutionStats],
) -> Factor:
    """Execute one plan op (vectorized when possible, generic otherwise)."""
    semiring = query.semiring
    if isinstance(op, InputOp):
        factor = inputs[op.factor]
        if op.lift_boolean and not factor.is_boolean():
            factor = _lift_boolean(factor)
        return factor
    if isinstance(op, FusedJoinMarginalizeOp):
        parts = [env[s] for s in op.sources]
        result: Optional[Factor] = None
        if columnar and all(isinstance(p, ColumnarFactor) for p in parts):
            result = fused_join_marginalize(
                parts, op.variable, op.schema, semiring
            )
        if result is not None:
            COUNTERS.increment("solver.fused_vectorized")
            if stats is not None:
                stats.fused_vectorized += 1
            return result
        COUNTERS.increment("solver.fused_fallback")
        if stats is not None:
            stats.fused_fallback += 1
        return operations.marginalize(
            operations.multi_join(parts), op.variable, semiring.add
        )
    if isinstance(op, JoinOp):
        return operations.join(env[op.left], env[op.right])
    if isinstance(op, SemijoinOp):
        return operations.semijoin(env[op.left], env[op.right])
    if isinstance(op, ProjectOp):
        return operations.project(env[op.source], op.schema)
    if isinstance(op, MarginalizeOp):
        aggregate = query.aggregate_for(op.variable)
        combine = aggregate.resolve(semiring)
        full_domain = (
            query.domains[op.variable] if aggregate.needs_full_domain else None
        )
        return operations.marginalize(
            env[op.source], op.variable, combine, full_domain
        )
    if isinstance(op, AggregateAbsentOp):
        aggregate = query.aggregate_for(op.variable)
        combine = aggregate.resolve(semiring)
        return operations.aggregate_absent_variable(
            env[op.source],
            combine,
            len(query.domains[op.variable]),
            aggregate.needs_full_domain,
        )
    raise TypeError(f"unknown plan op {type(op).__name__}")
