"""Factor algebra: join, semijoin, projection and ⊕-marginalization.

These are the relational/semiring operators the paper builds on:
natural join (Definition 3.4), semijoin (Definition 3.5), projection
``pi_S`` and the aggregate push-down of Theorem G.1 / Corollary G.2.

Each operator dispatches on the operands' storage backend: when every
operand is a :class:`~repro.semiring.columnar.ColumnarFactor` (and, for
marginalization, the aggregate is the semiring's own ⊕ without a
full-domain fold), the vectorized kernels of
:mod:`repro.semiring.columnar` run; otherwise the generic dict path below
does, which accepts any mix of backends, semirings and aggregates.  Both
paths produce the same canonical listing representation.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Sequence, Tuple

from ..obs.counters import COUNTERS
from ..semiring import ColumnarFactor, Factor, Semiring, supports_columnar, to_backend
from ..semiring.semirings import fold_repeat
from ..semiring.columnar import (
    columnar_join,
    columnar_marginalize,
    columnar_project,
    columnar_semijoin,
)

Tuple_ = Tuple[Any, ...]


def _columnar_operands(*factors: Factor) -> bool:
    """True when every operand can take the vectorized path."""
    return all(isinstance(f, ColumnarFactor) for f in factors) and supports_columnar(
        factors[0].semiring
    )


def _merged_schema(a: Sequence[str], b: Sequence[str]) -> Tuple[str, ...]:
    return tuple(a) + tuple(v for v in b if v not in a)


def join(left: Factor, right: Factor, name: str | None = None) -> Factor:
    """Natural join with semiring-multiplied annotations.

    For Boolean factors this is Definition 3.4; in general it is the ⊗ of
    two functions viewed over the union schema.

    Raises:
        ValueError: if the factors use different semirings.
    """
    if left.semiring.name != right.semiring.name:
        raise ValueError(
            f"cannot join factors over semirings "
            f"{left.semiring.name!r} and {right.semiring.name!r}"
        )
    semiring = left.semiring
    if _columnar_operands(left, right):
        out = columnar_join(left, right, name)
        if out is not None:
            COUNTERS.increment("kernel.columnar")
            return out
    COUNTERS.increment("kernel.dict_fallback")
    shared = tuple(v for v in left.schema if v in right.schema)
    out_schema = _merged_schema(left.schema, right.schema)

    # Hash join: index the smaller side on the shared variables.
    if len(right) < len(left):
        build, probe = right, left
    else:
        build, probe = left, right
    build_key_idx = [build.column_index(v) for v in shared]
    probe_key_idx = [probe.column_index(v) for v in shared]
    index: Dict[Tuple_, list] = {}
    for row, value in build:
        key = tuple(row[i] for i in build_key_idx)
        index.setdefault(key, []).append((row, value))

    # Positions to assemble the output tuple from (probe row, build row).
    out_rows: Dict[Tuple_, Any] = {}
    # Output order must follow out_schema: compute per-variable source.
    sources = []
    for v in out_schema:
        if v in probe.schema:
            sources.append(("p", probe.column_index(v)))
        else:
            sources.append(("b", build.column_index(v)))
    mul = semiring.mul
    for prow, pval in probe:
        key = tuple(prow[i] for i in probe_key_idx)
        for brow, bval in index.get(key, ()):
            out = tuple(
                prow[i] if side == "p" else brow[i] for side, i in sources
            )
            val = mul(pval, bval)
            if out in out_rows:
                out_rows[out] = semiring.add(out_rows[out], val)
            else:
                out_rows[out] = val
    return Factor(out_schema, out_rows, semiring, name)


def multi_join(factors: Iterable[Factor], name: str | None = None) -> Factor:
    """Join a sequence of factors left to right.

    Raises:
        ValueError: on an empty sequence (there is no universal schema).
    """
    factors = list(factors)
    if not factors:
        raise ValueError("multi_join requires at least one factor")
    acc = factors[0]
    for f in factors[1:]:
        acc = join(acc, f)
    if name is not None:
        acc = acc.copy(name=name)
    return acc


def semijoin(left: Factor, right: Factor, name: str | None = None) -> Factor:
    """Semijoin ``left ⋉ right`` (Definition 3.5).

    Keeps the tuples of ``left`` whose projection onto the shared
    variables appears in ``right``; annotations of ``left`` are preserved
    (the paper's usage is Boolean filtering, e.g. Examples 2.1–2.2).
    """
    if _columnar_operands(left, right):
        out = columnar_semijoin(left, right, name)
        if out is not None:
            COUNTERS.increment("kernel.columnar")
            return out
    COUNTERS.increment("kernel.dict_fallback")
    shared = tuple(v for v in left.schema if v in right.schema)
    if not shared:
        # Degenerate: R1 ⋈ pi_∅(R2) — empty right empties left.
        if len(right) == 0:
            return Factor(left.schema, (), left.semiring, name)
        return left.copy(name=name)
    right_keys = {right.project_tuple(row, shared) for row in right.tuples()}
    left_idx = [left.column_index(v) for v in shared]
    rows = {
        row: value
        for row, value in left
        if tuple(row[i] for i in left_idx) in right_keys
    }
    return Factor(left.schema, rows, left.semiring, name)


def project(factor: Factor, variables: Sequence[str], name: str | None = None) -> Factor:
    """Projection ``pi_variables`` with ⊕-combined annotations.

    For Boolean factors this is classic duplicate-eliminating projection
    (used by the star protocol of Example 2.2: ``pi_A(R)``); in general
    duplicate images are combined with the semiring's ``add``.
    """
    variables = tuple(variables)
    if _columnar_operands(factor):
        out = columnar_project(factor, variables, name)
        if out is not None:
            COUNTERS.increment("kernel.columnar")
            return out
    COUNTERS.increment("kernel.dict_fallback")
    idx = [factor.column_index(v) for v in variables]
    semiring = factor.semiring
    rows: Dict[Tuple_, Any] = {}
    for row, value in factor:
        key = tuple(row[i] for i in idx)
        if key in rows:
            rows[key] = semiring.add(rows[key], value)
        else:
            rows[key] = value
    return Factor(variables, rows, semiring, name)


def marginalize(
    factor: Factor,
    variable: str,
    combine: Callable[[Any, Any], Any] | None = None,
    full_domain: Sequence[Any] | None = None,
    name: str | None = None,
) -> Factor:
    """Aggregate ``variable`` out of ``factor``.

    Args:
        factor: The input factor; ``variable`` must be in its schema.
        combine: The aggregate operator ``⊕(i)``.  Defaults to the
            semiring's ``add``.  Any *semiring aggregate* (an operator
            forming a semiring with the same ⊗ and additive identity 0,
            per the general FAQ definition) may skip absent tuples, since
            they carry the shared identity.
        full_domain: Must be supplied for *product aggregates* (⊕ = ⊗) or
            any operator whose identity is not the semiring zero: the fold
            then runs left-to-right over ``full_domain`` *in the given
            order*, with absent tuples contributing the semiring zero
            (annihilating a product).  For a non-commutative or
            non-associative ``combine`` the result therefore depends on the
            order of ``full_domain``; callers must pass the domain in the
            order the aggregate is meant to fold (semiring aggregates and
            product aggregates are commutative, so the paper's queries are
            insensitive to it).
        name: Optional output name.

    Returns:
        A factor over the schema without ``variable``.
    """
    semiring = factor.semiring
    if (
        full_domain is None
        and (combine is None or combine is semiring.add)
        and _columnar_operands(factor)
    ):
        out = columnar_marginalize(factor, variable, name)
        if out is not None:
            COUNTERS.increment("kernel.columnar")
            return out
    COUNTERS.increment("kernel.dict_fallback")
    combine = combine or semiring.add
    var_idx = factor.column_index(variable)
    out_schema = tuple(v for v in factor.schema if v != variable)

    if full_domain is None:
        rows: Dict[Tuple_, Any] = {}
        for row, value in factor:
            key = row[:var_idx] + row[var_idx + 1:]
            if key in rows:
                rows[key] = combine(rows[key], value)
            else:
                rows[key] = value
        return Factor(out_schema, rows, semiring, name)

    # Full-domain fold: group rows, then fold over every domain value.
    groups: Dict[Tuple_, Dict[Any, Any]] = {}
    for row, value in factor:
        key = row[:var_idx] + row[var_idx + 1:]
        groups.setdefault(key, {})[row[var_idx]] = value
    rows = {}
    zero = semiring.zero
    domain = list(full_domain)
    for key, present in groups.items():
        it = iter(domain)
        acc = present.get(next(it), zero)
        for dom_value in it:
            acc = combine(acc, present.get(dom_value, zero))
        rows[key] = acc
    return Factor(out_schema, rows, semiring, name)


def aggregate_absent_variable(
    factor: Factor,
    combine: Callable[[Any, Any], Any],
    domain_size: int,
    is_product: bool,
) -> Factor:
    """Aggregate out a variable that does not occur in ``factor``.

    Summing a bound variable absent from every factor multiplies each
    annotation by the domain size *in the aggregate's sense*: a fold of
    ``|Dom|`` copies of the value under ``combine`` (for a product
    aggregate, the value to the power ``|Dom|``).
    """
    if domain_size < 1:
        raise ValueError("domain_size must be positive")
    semiring = factor.semiring

    if combine is semiring.add:
        # The semiring's own fold gets the idempotent-add shortcut.
        scale = lambda value: semiring.sum_repeat(value, domain_size)  # noqa: E731
    else:
        # Any other FAQ aggregate is associative and commutative, so the
        # O(log |Dom|) double-and-add fold applies.
        scale = lambda value: fold_repeat(combine, value, domain_size)  # noqa: E731

    del is_product  # same fold either way; kept for call-site clarity
    rows = {row: scale(value) for row, value in factor}
    out = Factor(factor.schema, rows, semiring, factor.name)
    # Per-row scaling is inherently scalar work, but keep the result on the
    # input's backend so a columnar pipeline stays columnar afterwards.
    return to_backend(out, factor.backend)


def scalar(semiring: Semiring, value: Any) -> Factor:
    """A zero-arity factor holding one value (a query answer)."""
    return Factor((), {(): value} if not semiring.is_zero(value) else {}, semiring)


def scalar_value(factor: Factor) -> Any:
    """Read the value of a zero-arity factor (semiring zero when empty).

    Raises:
        ValueError: if the factor still has variables.
    """
    if factor.schema:
        raise ValueError(f"factor still has free variables: {factor.schema}")
    return factor.rows.get((), factor.semiring.zero)
