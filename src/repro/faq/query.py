"""FAQ query objects — the general FAQ problem of Section 5 / Appendix G.1.

An FAQ instance is a multi-hypergraph ``H = (V, E)`` with one input
function (factor) per hyperedge, a tuple of *free* variables ``F``, and one
aggregate operator per *bound* variable.  Each bound variable's operator is
either the semiring ``⊕`` itself (FAQ-SS), another operator forming a
commutative semiring with the same ``⊗`` and identities (a *semiring
aggregate*), or the product ``⊗`` itself (a *product aggregate*).

The answer is the function

    phi(x_F) = ⊕^{(l+1)} ... ⊕^{(n)}  ⊗_{e in E} f_e(x_e)

computed right-to-left over the bound-variable order.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple

from ..hypergraph import Hypergraph
from ..semiring import BOOLEAN, Factor, Semiring, to_backend, validate_backend


@dataclass(frozen=True)
class Aggregate:
    """One bound-variable operator ``⊕(i)``.

    Attributes:
        name: Identifier ("sum", "product", "max", ...).
        kind: ``"semiring"`` when ``(D, combine, ⊗)`` forms a commutative
            semiring sharing identities with the query's semiring (absent
            tuples then carry the identity 0 and may be skipped), or
            ``"product"`` when ``combine`` is ``⊗`` (the fold must then run
            over the full domain — absent tuples annihilate).
        combine: The binary operator; None means "use the query semiring's
            add (for kind=semiring) or mul (for kind=product)".
    """

    name: str
    kind: str = "semiring"
    combine: Optional[Callable[[Any, Any], Any]] = None

    def __post_init__(self) -> None:
        if self.kind not in ("semiring", "product"):
            raise ValueError(f"unknown aggregate kind {self.kind!r}")

    def resolve(self, semiring: Semiring) -> Callable[[Any, Any], Any]:
        """The concrete binary operator for this aggregate."""
        if self.combine is not None:
            return self.combine
        return semiring.mul if self.kind == "product" else semiring.add

    @property
    def needs_full_domain(self) -> bool:
        """Product aggregates must fold over every domain value."""
        return self.kind == "product"


#: The default FAQ-SS aggregate: the semiring's own ⊕.
SUM = Aggregate("sum", "semiring")
#: The product aggregate ⊕(i) = ⊗.
PRODUCT = Aggregate("product", "product")


@dataclass
class FAQQuery:
    """A general FAQ instance (Appendix G.1 notation).

    Attributes:
        hypergraph: The query hypergraph ``H``; hyperedge names key factors.
        factors: One factor per hyperedge, with a schema whose variable
            *set* equals the hyperedge.
        domains: Full domain per variable (``Dom(v)``); needed for product
            aggregates, for the naive solver, and to compute ``D`` and
            per-tuple bit costs.
        free_vars: The free variables ``F`` (output schema, in order).
        semiring: The query semiring ``(D, ⊕, ⊗)``.
        aggregates: Operator per bound variable; missing entries default
            to :data:`SUM` (i.e. FAQ-SS on those variables).
        bound_order: Order in which bound variables are *listed*
            (``x_{l+1}, ..., x_n``); aggregation applies right-to-left, so
            solvers eliminate the last variable first.  Defaults to sorted
            bound variables.
        name: Optional label for reports.
        backend: Factor storage backend: ``"dict"`` (generic, the seed
            representation), ``"columnar"`` (vectorized NumPy data plane
            for the standard numeric semirings; factors over unsupported
            semirings stay dict), or ``None`` (default) to leave the
            supplied factors' storage untouched.
    """

    hypergraph: Hypergraph
    factors: Dict[str, Factor]
    domains: Dict[str, Tuple[Any, ...]]
    free_vars: Tuple[str, ...] = ()
    semiring: Semiring = BOOLEAN
    aggregates: Dict[str, Aggregate] = field(default_factory=dict)
    bound_order: Optional[Tuple[str, ...]] = None
    name: Optional[str] = None
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        self.free_vars = tuple(self.free_vars)
        self.domains = {v: tuple(dom) for v, dom in self.domains.items()}
        if self.backend is not None:
            validate_backend(self.backend)
            self.factors = {
                n: to_backend(f, self.backend) for n, f in self.factors.items()
            }
        self.validate()
        if self.bound_order is None:
            self.bound_order = tuple(sorted(self.bound_vars, key=str))
        else:
            self.bound_order = tuple(self.bound_order)
            if set(self.bound_order) != self.bound_vars:
                raise ValueError(
                    "bound_order must list exactly the bound variables; "
                    f"got {self.bound_order}, expected {sorted(self.bound_vars, key=str)}"
                )

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------
    @property
    def variables(self) -> set:
        return self.hypergraph.vertices

    @property
    def bound_vars(self) -> set:
        return self.variables - set(self.free_vars)

    @property
    def num_relations(self) -> int:
        """``k`` in the paper's notation."""
        return self.hypergraph.num_edges

    @property
    def max_factor_size(self) -> int:
        """``N``: the largest listing size among the input functions."""
        return max((len(f) for f in self.factors.values()), default=0)

    @property
    def max_domain_size(self) -> int:
        """``D = max_v |Dom(v)|``."""
        return max((len(d) for d in self.domains.values()), default=0)

    @property
    def arity(self) -> int:
        """``r``: the maximum arity among the input functions."""
        return self.hypergraph.arity

    def bits_per_tuple(self) -> int:
        """The paper's per-round edge budget ``O(r * log2 D)`` in bits."""
        import math

        d = max(2, self.max_domain_size)
        return max(1, self.arity) * max(1, math.ceil(math.log2(d)))

    def aggregate_for(self, variable: str) -> Aggregate:
        """The operator for a bound variable (defaults to :data:`SUM`)."""
        if variable in self.free_vars:
            raise ValueError(f"{variable!r} is free; it has no aggregate")
        return self.aggregates.get(variable, SUM)

    def is_faq_ss(self) -> bool:
        """True when every bound variable uses the same semiring ⊕ (FAQ-SS)."""
        return all(
            self.aggregate_for(v).kind == "semiring"
            and self.aggregate_for(v).combine is None
            for v in self.bound_vars
        )

    def with_backend(self, backend: Optional[str]) -> "FAQQuery":
        """A copy of this query with factors stored in ``backend``.

        ``"dict"`` / ``"columnar"`` normalize every factor to that storage
        (columnar conversion skips factors over unsupported semirings);
        ``None`` leaves factor storage untouched.  Returns ``self`` when
        the backend already matches.
        """
        if backend == self.backend:
            return self
        return dataclasses.replace(self, backend=backend)

    def elimination_order(self) -> Tuple[str, ...]:
        """Bound variables in the order solvers eliminate them.

        Aggregation is applied right-to-left over ``bound_order``; for pure
        FAQ-SS any order is valid (Theorem G.1) but we keep the listed one
        so mixed-operator queries are always evaluated correctly.
        """
        return tuple(reversed(self.bound_order))

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check schema/domain consistency.

        Raises:
            ValueError: on a missing factor, a factor/hyperedge schema
                mismatch, an unknown free variable, a domain violation, or
                a factor over a different semiring.
        """
        edge_names = set(self.hypergraph.edge_names)
        if set(self.factors) != edge_names:
            raise ValueError(
                f"factors {sorted(self.factors)} do not match hyperedges "
                f"{sorted(edge_names)}"
            )
        for name, factor in self.factors.items():
            if set(factor.schema) != set(self.hypergraph.edge(name)):
                raise ValueError(
                    f"factor {name!r} schema {factor.schema} does not match "
                    f"hyperedge {sorted(self.hypergraph.edge(name), key=str)}"
                )
            if factor.semiring.name != self.semiring.name:
                raise ValueError(
                    f"factor {name!r} uses semiring {factor.semiring.name!r} "
                    f"but the query uses {self.semiring.name!r}"
                )
        unknown_free = set(self.free_vars) - self.variables
        if unknown_free:
            raise ValueError(f"free variables not in H: {sorted(unknown_free, key=str)}")
        missing_domains = self.variables - set(self.domains)
        if missing_domains:
            raise ValueError(
                f"variables without domains: {sorted(missing_domains, key=str)}"
            )
        for name, factor in self.factors.items():
            for var in factor.schema:
                dom = set(self.domains[var])
                extra = factor.active_domain(var) - dom
                if extra:
                    raise ValueError(
                        f"factor {name!r} has values outside Dom({var!r}): "
                        f"{sorted(extra, key=str)[:5]}"
                    )
        unknown_aggs = set(self.aggregates) - self.variables
        if unknown_aggs:
            raise ValueError(
                f"aggregates for unknown variables: {sorted(unknown_aggs, key=str)}"
            )
        free_aggs = set(self.aggregates) & set(self.free_vars)
        if free_aggs:
            raise ValueError(
                f"aggregates declared for free variables: {sorted(free_aggs, key=str)}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or "FAQQuery"
        return (
            f"<{label} k={self.num_relations} N={self.max_factor_size} "
            f"free={self.free_vars} semiring={self.semiring.name}>"
        )


# ---------------------------------------------------------------------------
# Convenience constructors for the paper's special cases
# ---------------------------------------------------------------------------


def bcq(
    hypergraph: Hypergraph,
    relations: Mapping[str, Factor],
    domains: Mapping[str, Sequence[Any]],
    name: Optional[str] = None,
    backend: Optional[str] = None,
) -> FAQQuery:
    """A Boolean Conjunctive Query: ``F = ∅`` over the Boolean semiring."""
    factors = {
        n: (f if f.is_boolean() else f.with_semiring(BOOLEAN))
        for n, f in relations.items()
    }
    return FAQQuery(
        hypergraph=hypergraph,
        factors=dict(factors),
        domains=dict(domains),
        free_vars=(),
        semiring=BOOLEAN,
        name=name or "BCQ",
        backend=backend,
    )


def natural_join_query(
    hypergraph: Hypergraph,
    relations: Mapping[str, Factor],
    domains: Mapping[str, Sequence[Any]],
    name: Optional[str] = None,
    backend: Optional[str] = None,
) -> FAQQuery:
    """The natural join: ``F = V`` over the Boolean semiring (footnote 4)."""
    factors = {
        n: (f if f.is_boolean() else f.with_semiring(BOOLEAN))
        for n, f in relations.items()
    }
    return FAQQuery(
        hypergraph=hypergraph,
        factors=dict(factors),
        domains=dict(domains),
        free_vars=tuple(sorted(hypergraph.vertices, key=str)),
        semiring=BOOLEAN,
        name=name or "NaturalJoin",
        backend=backend,
    )


def marginal_query(
    hypergraph: Hypergraph,
    factors: Mapping[str, Factor],
    domains: Mapping[str, Sequence[Any]],
    free_vars: Sequence[str],
    semiring: Semiring,
    name: Optional[str] = None,
    backend: Optional[str] = None,
) -> FAQQuery:
    """An FAQ-SS marginal, e.g. a PGM factor marginal with ``F = e``."""
    return FAQQuery(
        hypergraph=hypergraph,
        factors=dict(factors),
        domains=dict(domains),
        free_vars=tuple(free_vars),
        semiring=semiring,
        name=name or "Marginal",
        backend=backend,
    )
