"""Embedding TRIBES into forest BCQs — Lemma 4.3 and Example 2.4.

Given a forest query ``H`` (arity <= 2, acyclic) and a TRIBES instance,
construct a BCQ instance ``q_{H,S,T}`` with

    BCQ(q) = 1  iff  TRIBES(S, T) = 1,

by planting each set pair on the two tree edges around an internal vertex
of one bipartition class (the set ``O``), filling the other edges incident
to ``O`` with ``[N] x {1}`` and all remaining edges with ``{1} x {1}``.
The embedding capacity ``|O| >= y(H)/2`` drives the Lemma 4.4 bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..hypergraph import Hypergraph, is_acyclic
from ..semiring import BOOLEAN, Factor
from .tribes import TribesInstance


@dataclass
class ForestEmbedding:
    """A TRIBES -> BCQ embedding (Lemma 4.3).

    Attributes:
        hypergraph: The forest query ``H``.
        factors: The constructed relations, keyed by hyperedge name.
        domains: Domains (``[N]`` plus the filler value 1).
        o_nodes: The vertices carrying set pairs, in pair order.
        s_edges: Edge name carrying ``S_i`` (Alice's side), per pair.
        t_edges: Edge name carrying ``T_i`` (Bob's side), per pair.
        tribes: The embedded instance.
    """

    hypergraph: Hypergraph
    factors: Dict[str, Factor]
    domains: Dict[str, Tuple]
    o_nodes: Tuple[str, ...]
    s_edges: Tuple[str, ...]
    t_edges: Tuple[str, ...]
    tribes: TribesInstance


def _forest_structure(
    hypergraph: Hypergraph,
) -> Tuple[Dict[str, Optional[str]], Dict[str, int]]:
    """Root every tree and return (parent vertex map, depth map)."""
    parents: Dict[str, Optional[str]] = {}
    depth: Dict[str, int] = {}
    for component in hypergraph.connected_components():
        root = min(component, key=str)
        parents[root] = None
        depth[root] = 0
        frontier = [root]
        seen = {root}
        while frontier:
            nxt = []
            for u in frontier:
                for v in sorted(hypergraph.neighbors(u), key=str):
                    if v not in seen:
                        seen.add(v)
                        parents[v] = u
                        depth[v] = depth[u] + 1
                        nxt.append(v)
            frontier = nxt
    return parents, depth


def embedding_capacity(hypergraph: Hypergraph) -> int:
    """``|O|``: the number of plantable vertices (>= y(H)/2, Lemma 4.3)."""
    return len(_choose_o_set(hypergraph))


def _choose_o_set(hypergraph: Hypergraph) -> List[str]:
    """The larger bipartition class of degree->=2 vertices."""
    _parents, depth = _forest_structure(hypergraph)
    even = [
        v
        for v in sorted(hypergraph.vertices, key=str)
        if len(hypergraph.neighbors(v)) >= 2 and depth[v] % 2 == 0
    ]
    odd = [
        v
        for v in sorted(hypergraph.vertices, key=str)
        if len(hypergraph.neighbors(v)) >= 2 and depth[v] % 2 == 1
    ]
    return even if len(even) >= len(odd) else odd


def embed_tribes_in_forest(
    hypergraph: Hypergraph, tribes: TribesInstance
) -> ForestEmbedding:
    """Construct the Lemma 4.3 BCQ instance for a forest query.

    Args:
        hypergraph: A forest: arity <= 2 and acyclic (simple-graph edges).
        tribes: The TRIBES instance; needs ``tribes.m <=``
            :func:`embedding_capacity` slots.

    Returns:
        A :class:`ForestEmbedding` whose BCQ value provably equals the
        TRIBES value (tests machine-check this on random instances).

    Raises:
        ValueError: if ``H`` is not a forest or has too few slots.
    """
    if hypergraph.arity > 2:
        raise ValueError("forest embedding requires arity <= 2")
    if not is_acyclic(hypergraph):
        raise ValueError("forest embedding requires an acyclic simple graph")
    o_set = _choose_o_set(hypergraph)
    if tribes.m > len(o_set):
        raise ValueError(
            f"TRIBES has m={tribes.m} pairs but H only embeds {len(o_set)}"
        )
    chosen = o_set[: tribes.m]
    parents, _depth = _forest_structure(hypergraph)

    n = tribes.universe_size
    filler = 1
    domain = tuple(range(n)) + ((filler,) if filler >= n else ())
    domains = {v: domain for v in hypergraph.vertices}

    def edge_between(u: str, v: str) -> str:
        for name, verts in hypergraph.edges():
            if verts == frozenset((u, v)):
                return name
        raise KeyError(f"no edge between {u!r} and {v!r}")

    factors: Dict[str, Factor] = {}
    s_edges: List[str] = []
    t_edges: List[str] = []
    planted_edges: Set[str] = set()

    for o, (s_set, t_set) in zip(chosen, tribes.pairs):
        neighbors = sorted(hypergraph.neighbors(o), key=str)
        parent = parents[o]
        children = [v for v in neighbors if v != parent]
        oc = children[0]
        op = parent if parent is not None else children[1]
        s_edge = edge_between(o, oc)
        t_edge = edge_between(o, op)
        schema_s = _ordered_schema(hypergraph, s_edge)
        schema_t = _ordered_schema(hypergraph, t_edge)
        factors[s_edge] = _planted_factor(schema_s, o, sorted(s_set), filler, s_edge)
        factors[t_edge] = _planted_factor(schema_t, o, sorted(t_set), filler, t_edge)
        planted_edges.update((s_edge, t_edge))
        s_edges.append(s_edge)
        t_edges.append(t_edge)

    chosen_set = set(chosen)
    for name, verts in hypergraph.edges():
        if name in planted_edges:
            continue
        schema = _ordered_schema(hypergraph, name)
        touching = [v for v in schema if v in chosen_set]
        if touching:
            # Free the O-coordinate ([N]), pin the rest to the filler.
            o = touching[0]
            factors[name] = _planted_factor(
                schema, o, list(range(n)), filler, name
            )
        else:
            factors[name] = Factor.from_tuples(
                schema, [tuple(filler for _ in schema)], BOOLEAN, name
            )
    return ForestEmbedding(
        hypergraph=hypergraph,
        factors=factors,
        domains=domains,
        o_nodes=tuple(chosen),
        s_edges=tuple(s_edges),
        t_edges=tuple(t_edges),
        tribes=tribes,
    )


def _ordered_schema(hypergraph: Hypergraph, edge_name: str) -> Tuple[str, ...]:
    return tuple(sorted(hypergraph.edge(edge_name), key=str))


def _planted_factor(
    schema: Tuple[str, ...],
    free_var: str,
    values: List,
    filler,
    name: str,
) -> Factor:
    """``values x {filler}``: the free coordinate ranges over ``values``."""
    idx = schema.index(free_var)
    tuples = []
    for value in values:
        row = [filler] * len(schema)
        row[idx] = value
        tuples.append(tuple(row))
    return Factor.from_tuples(schema, tuples, BOOLEAN, name)
