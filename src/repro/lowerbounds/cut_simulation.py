"""Cut simulation — the executable form of the Lemma 4.4 argument.

Lemma 4.4 turns any R-round protocol on ``G`` into a two-party protocol:
Alice simulates the nodes on side ``A`` of a K-separating cut, Bob those
on side ``B``, and per round at most ``MinCut(G,K) * ceil(log2 MinCut)``
bits cross (the log term names the crossing edge).  Hence

    R >= two-party-complexity / (MinCut * log MinCut).

This module extracts the two-party *transcript cost* of an actual
simulation run and checks the accounting identity the lemma relies on —
making the reduction's communication bookkeeping machine-verifiable, not
just the instance construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence, Set, Tuple

from ..network.mincut import mincut, mincut_partition
from ..network.simulator import SimulationResult
from ..network.topology import Topology


@dataclass
class CutTranscript:
    """The two-party view of one protocol run across a cut.

    Attributes:
        side_a / side_b: The simulated node partition.
        crossing_edges: Edges of ``G`` across the cut.
        bits_crossing: Total bits the run actually sent across the cut
            (Alice<->Bob communication in the simulated protocol).
        rounds: The run's round count.
        cut_size: Number of crossing edges.
    """

    side_a: Set[str]
    side_b: Set[str]
    crossing_edges: Tuple[Tuple[str, str], ...]
    bits_crossing: int
    rounds: int
    cut_size: int

    def two_party_bits_with_addressing(self) -> float:
        """Bits of the induced two-party protocol, with the
        ``ceil(log2 cut)`` per-bit edge-addressing overhead of Lemma 4.4."""
        address = max(1, math.ceil(math.log2(max(2, self.cut_size))))
        return self.bits_crossing * address

    def round_lower_bound(self, two_party_bits: float, capacity_bits: int) -> float:
        """``R >= bits / (cut * capacity * log cut)``: the bound any
        two-party complexity ``two_party_bits`` implies for this cut."""
        address = max(1.0, math.ceil(math.log2(max(2, self.cut_size))))
        return two_party_bits / (self.cut_size * capacity_bits * address)


def cut_transcript(
    topology: Topology,
    players: Sequence[str],
    result: SimulationResult,
) -> CutTranscript:
    """Extract the two-party transcript of a run across a min K-cut.

    Args:
        topology: The communication graph the run used.
        players: The terminal set ``K`` the cut must separate.
        result: The finished simulation (its ``edge_bits`` are consulted).
    """
    side_a, side_b, crossing = mincut_partition(topology, players)
    bits = sum(
        result.edge_bits.get(tuple(sorted(edge)), 0) for edge in crossing
    )
    return CutTranscript(
        side_a=set(side_a),
        side_b=set(side_b),
        crossing_edges=tuple(crossing),
        bits_crossing=bits,
        rounds=result.rounds,
        cut_size=len(crossing),
    )


def predicted_crossing_bits(
    crossing_edges: Sequence[Tuple[str, str]],
    bits_per_edge: Mapping[Tuple[str, str], int],
) -> int:
    """Crossing bits implied by a *directed* per-link bit map.

    Folds a predicted per-directed-link map (e.g.
    ``repro.costmodel.CostPrediction.bits_per_edge``) over an undirected
    crossing-edge set, summing both directions of each cut edge.  On a
    covered cell this must equal the executed run's
    :attr:`CutTranscript.bits_crossing` exactly — linking the symbolic
    cost plane to the Lemma 4.4 accounting oracle: the model predicts
    not just the totals but the exact two-party transcript cost of the
    induced cut protocol.
    """
    crossing = {tuple(sorted(edge)) for edge in crossing_edges}
    return sum(
        bits
        for (src, dst), bits in bits_per_edge.items()
        if tuple(sorted((src, dst))) in crossing
    )


class CutAccountingError(AssertionError):
    """The Lemma 4.4 accounting identity failed — a simulator/engine bug.

    An :class:`AssertionError` subclass for backward compatibility, but
    raised explicitly so the check survives ``python -O`` (a bare
    ``assert`` would be compiled out and silently disable the lab's
    bound-certification oracle).
    """


def verify_cut_accounting(
    transcript: CutTranscript, capacity_bits: int
) -> None:
    """Check the Lemma 4.4 bookkeeping on a real run.

    Per round at most ``cut_size * capacity`` bits cross the cut, so the
    observed crossing bits can never exceed ``rounds * cut * capacity``.

    Raises:
        CutAccountingError: if the run violated the accounting identity
            (which would indicate a simulator bug).
    """
    budget = transcript.rounds * transcript.cut_size * capacity_bits
    if transcript.bits_crossing > budget:
        raise CutAccountingError(
            f"{transcript.bits_crossing} bits crossed a cut of size "
            f"{transcript.cut_size} in {transcript.rounds} rounds at "
            f"{capacity_bits} bits/round"
        )


def implied_round_lower_bound(
    topology: Topology,
    players: Sequence[str],
    two_party_bits: float,
    capacity_bits: int,
) -> float:
    """The round lower bound a two-party bit bound implies on ``G``.

    This is inequality (1) of Section 2.2.2 instantiated with actual
    graph quantities: any protocol needs at least
    ``bits / (MinCut * capacity * ceil(log MinCut))`` rounds.
    """
    cut = mincut(topology, players)
    address = max(1.0, math.ceil(math.log2(max(2, cut))))
    return two_party_bits / (cut * capacity_bits * address)
