"""Closed-form round bounds and gap analysis — Table 1 and Theorems
4.1 / 5.1 / 5.2 / F.1.

All formulas are stated with constant 1 and with the paper's ``Õ/Ω̃``
polylog factors kept explicit where they are concrete (the
``MinCut log MinCut`` cut-simulation term); benchmarks compare *shape*:
measured upper / formula lower against the Table 1 gap column.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..core.memo import LRUMemo, hypergraph_key, topology_key
from ..decomposition import best_gyo_ghd
from ..hypergraph import Hypergraph, decompose, simple_graph_degeneracy
from ..hypergraph.degeneracy import degeneracy as hyper_degeneracy
from ..network.mincut import mincut
from ..network.steiner import st_value
from ..network.topology import Topology
from .forest_embedding import embedding_capacity as forest_capacity
from .core_embedding import core_embedding_capacity
from .hypergraph_embedding import embedding_capacity as hyper_capacity


#: Structural memo for the Theorem 4.1/F.1 formula: the same (H, G, K, N)
#: identity is evaluated once per axis *plane* in a lab grid (engine x
#: solver x backend x kernels), and the formula is axis-blind.
_BCQ_MEMO = LRUMemo("bounds.bcq", maxsize=1024)


@dataclass
class BoundReport:
    """Upper/lower round bounds for one (H, G, K) triple at size N.

    Attributes:
        upper_rounds: The Theorem 4.1/F.1 upper-bound formula value.
        lower_rounds: The Theorem 4.4/F.9 lower-bound formula value.
        components: The formula ingredients (y, n2, d, r, MinCut, ST, Δ,
            embedding capacity, ...), for reports.
    """

    upper_rounds: float
    lower_rounds: float
    components: Dict[str, float]

    @property
    def gap(self) -> float:
        """``upper / lower`` — compared against Table 1's gap column.

        A zero-bit report (both bounds 0, e.g. a co-located run) has gap
        1.0 — the bounds agree vacuously; only a positive upper over a
        zero lower is genuinely unbounded.
        """
        if self.lower_rounds <= 0:
            return 1.0 if self.upper_rounds <= 0 else math.inf
        return self.upper_rounds / self.lower_rounds


def structure_parameters(hypergraph: Hypergraph) -> Dict[str, float]:
    """The (H-only) formula ingredients: y, n2, d, r, k."""
    dec = decompose(hypergraph)
    ghd = best_gyo_ghd(hypergraph)
    if hypergraph.is_simple_graph():
        d = simple_graph_degeneracy(hypergraph)
    else:
        d = hyper_degeneracy(hypergraph)
    return {
        "y": float(ghd.num_internal_nodes),
        "n2": float(dec.n2),
        "d": float(max(1, d)),
        "r": float(max(1, hypergraph.arity)),
        "k": float(hypergraph.num_edges),
        "acyclic": float(dec.is_pure_forest),
    }


def steiner_term(
    topology: Topology,
    players: Sequence[str],
    n_words: int,
    deltas: Optional[Sequence[int]] = None,
) -> Dict[str, float]:
    """``min_Δ ( N / ST(G,K,Δ) + Δ )`` with the achieving Δ and ST."""
    terminals = sorted(set(players))
    if len(terminals) <= 1:
        return {"value": 0.0, "delta": 0.0, "st": 1.0}
    base = max(
        1,
        max(
            topology.distance(u, v) for u in terminals for v in terminals
        ),
    )
    if deltas is None:
        deltas = sorted(
            {base, topology.num_nodes}
            | {min(topology.num_nodes, base * (2**i)) for i in range(8)}
        )
    best = None
    for delta in deltas:
        st = st_value(topology, terminals, delta)
        if st == 0:
            continue
        value = n_words / st + delta
        if best is None or value < best["value"]:
            best = {"value": value, "delta": float(delta), "st": float(st)}
    if best is None:
        raise ValueError("no Steiner packing connects the players")
    return best


def bcq_bounds(
    hypergraph: Hypergraph,
    topology: Topology,
    players: Sequence[str],
    n: int,
) -> BoundReport:
    """Theorem 4.1 (simple graphs) / Theorem F.1 (hypergraphs) bounds.

    Upper:  ``y * min_Δ(N r / ST + Δ)  +  n2 d r N / MinCut + diam``
    Lower:  ``(m_forest + m_core) * N / (MinCut log MinCut)`` where the
    ``m``'s are the *achieved* embedding capacities (>= y/2 etc.), i.e.
    the bound our executable reductions actually certify.

    The formula is a pure function of (H, G, K, N) and fires no
    observability counters, so it is memoized structurally; callers get
    a fresh :class:`BoundReport` (components dict copied) per call.
    """
    key = (
        hypergraph_key(hypergraph),
        topology_key(topology),
        tuple(sorted(set(players))),
        int(n),
    )
    report = _BCQ_MEMO.get_or_compute(
        key, lambda: _bcq_bounds_uncached(hypergraph, topology, players, n)
    )
    return BoundReport(
        report.upper_rounds, report.lower_rounds, dict(report.components)
    )


def _bcq_bounds_uncached(
    hypergraph: Hypergraph,
    topology: Topology,
    players: Sequence[str],
    n: int,
) -> BoundReport:
    params = structure_parameters(hypergraph)
    terminals = sorted(set(players))
    if len(terminals) <= 1 or topology.num_nodes < 2:
        # Zero-bit scenario: one player (or a single-node topology) holds
        # everything, no communication happens, both bounds are 0.  Keep
        # the structure parameters so reports still show d/r.
        components = dict(params)
        components.update({"co_located": 1.0, "N": float(n)})
        return BoundReport(0.0, 0.0, components)
    cut = mincut(topology, terminals)
    st = steiner_term(topology, terminals, n)
    y, n2, d, r = params["y"], params["n2"], params["d"], params["r"]

    trivial_bits_words = n2 * d * n  # tuples shipped in the core phase
    diam = topology.diameter(among=terminals) if len(terminals) > 1 else 0
    upper = y * (st["value"] * r) + trivial_bits_words / max(1, cut) + diam

    if hypergraph.is_simple_graph():
        dec = decompose(hypergraph)
        if dec.is_pure_forest:
            m_forest = forest_capacity(hypergraph)
            m_core = 0
        else:
            m_forest = 0
            if dec.forest_edge_names:
                forest_part = hypergraph.restrict_edges(dec.forest_edge_names)
                m_forest = forest_capacity(forest_part)
            core_h = hypergraph.restrict_edges(dec.core_edge_names)
            _mode, m_core = core_embedding_capacity(core_h)
    else:
        m_forest = hyper_capacity(hypergraph)
        m_core = 0
    m = max(1, m_forest + m_core)
    log_cut = max(1.0, math.ceil(math.log2(max(2, cut))))
    lower = m * n / (cut * log_cut)

    components = dict(params)
    components.update(
        {
            "mincut": float(cut),
            "st_delta": st["delta"],
            "st_trees": st["st"],
            "steiner_term": st["value"],
            "m_forest": float(m_forest),
            "m_core": float(m_core),
            "diameter": float(diam),
            "N": float(n),
        }
    )
    return BoundReport(upper, lower, components)


def faq_bounds(
    hypergraph: Hypergraph,
    topology: Topology,
    players: Sequence[str],
    n: int,
) -> BoundReport:
    """Theorem 5.2's general-FAQ bounds (the lower side divided by d·r)."""
    base = bcq_bounds(hypergraph, topology, players, n)
    d, r = base.components["d"], base.components["r"]
    lower = base.lower_rounds / (d * r)
    return BoundReport(base.upper_rounds, lower, base.components)


def table1_gap_budget(row: str, d: float, r: float) -> float:
    """The Table 1 gap column as a multiplicative budget.

    ``Õ(1)`` rows get a generous polylog allowance; the d-dependent rows
    get ``c*d`` and ``c*d²r²`` budgets.  Benchmarks assert
    ``measured_gap <= polylog_allowance * budget``.

    ``d``/``r`` are clamped to at least 1: a degenerate structure report
    (e.g. an edgeless query, d = 0) must never produce a zero budget that
    fails every gap check vacuously.
    """
    d = max(1.0, float(d))
    r = max(1.0, float(r))
    if row in ("faq-line", "faq-arbitrary"):
        return 1.0
    if row == "bcq-degenerate":
        return d
    if row == "faq-hypergraph":
        return d * d * r * r
    if row == "mcm":
        return 1.0
    raise ValueError(f"unknown Table 1 row {row!r}")
