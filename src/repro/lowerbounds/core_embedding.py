"""Embedding TRIBES into cyclic cores — Theorem 4.4 / Lemma E.2.

Lemma E.2: the core ``C(H)`` of a simple graph either contains many
vertex-disjoint short cycles (found here by repeated shortest-cycle
extraction, the constructive form of Moore's bound) or a large independent
set (greedy min-degree removal, the constructive form of Turán's theorem).

* **Cycle case**: each set pair ``(S_i, T_i)`` is re-encoded over
  ``[√N] x [√N]``; ``R_{S_i}`` sits on cycle edge ``(c1, c2)``,
  ``R_{T_i}`` (coordinates reversed) on ``(c2, c3)``, the remaining cycle
  edges carry the identity relation ``{(a, a)}`` and all non-cycle edges
  the complete relation — a satisfying assignment walks the intersection
  element around the cycle.
* **Independent-set case**: identical to the forest embedding of
  Lemma 4.3 with the independent set playing ``O``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from ..hypergraph import Hypergraph
from ..semiring import BOOLEAN, Factor
from .tribes import TribesInstance


def _as_nx(hypergraph: Hypergraph) -> nx.Graph:
    g = nx.Graph()
    g.add_nodes_from(hypergraph.vertices)
    for name, verts in hypergraph.edges():
        vs = sorted(verts, key=str)
        if len(vs) == 2:
            g.add_edge(vs[0], vs[1], name=name)
    return g


def find_disjoint_cycles(hypergraph: Hypergraph) -> List[List[str]]:
    """Greedy vertex-disjoint short cycles (the Lemma E.2 cycle harvest).

    Repeatedly finds a shortest cycle (via per-edge BFS) and removes its
    vertices; each harvested cycle is returned as an ordered vertex list.
    """
    g = _as_nx(hypergraph)
    cycles: List[List[str]] = []
    while True:
        cycle = _shortest_cycle(g)
        if cycle is None:
            return cycles
        cycles.append(cycle)
        g.remove_nodes_from(cycle)


def _shortest_cycle(g: nx.Graph) -> Optional[List[str]]:
    best: Optional[List[str]] = None
    for u, v in sorted(g.edges, key=lambda e: tuple(map(str, e))):
        g.remove_edge(u, v)
        try:
            path = nx.shortest_path(g, u, v)
        except nx.NetworkXNoPath:
            path = None
        g.add_edge(u, v)
        if path is not None and (best is None or len(path) < len(best)):
            best = path
    return best


def greedy_independent_set(
    hypergraph: Hypergraph, require_degree_two: bool = True
) -> List[str]:
    """A maximal independent set by min-degree peeling (Turán-style).

    Args:
        require_degree_two: Keep only vertices with >= 2 incident edges in
            the original graph (they carry two planted relations).
    """
    g = _as_nx(hypergraph)
    out: List[str] = []
    work = g.copy()
    while work.number_of_nodes():
        v = min(work.nodes, key=lambda u: (work.degree(u), str(u)))
        out.append(v)
        neighbors = list(work.neighbors(v))
        work.remove_node(v)
        work.remove_nodes_from(neighbors)
    if require_degree_two:
        out = [v for v in out if g.degree(v) >= 2]
    return sorted(out, key=str)


@dataclass
class CoreEmbedding:
    """A TRIBES -> BCQ embedding into a cyclic simple graph (Theorem 4.4).

    Attributes:
        hypergraph: The (core) query graph.
        factors: The constructed relations.
        domains: Per-variable domains.
        mode: ``"cycles"`` or ``"independent-set"``.
        sites: The cycles (vertex lists) or the independent-set vertices
            used, in pair order.
        s_edges / t_edges: The edges carrying Alice's / Bob's sets.
        tribes: The embedded instance.
    """

    hypergraph: Hypergraph
    factors: Dict[str, Factor]
    domains: Dict[str, Tuple]
    mode: str
    sites: Tuple
    s_edges: Tuple[str, ...]
    t_edges: Tuple[str, ...]
    tribes: TribesInstance


def core_embedding_capacity(hypergraph: Hypergraph) -> Tuple[str, int]:
    """``(mode, capacity)``: how many pairs the Theorem 4.4 embedding fits."""
    cycles = find_disjoint_cycles(hypergraph)
    independent = greedy_independent_set(hypergraph)
    if len(cycles) >= len(independent):
        return "cycles", len(cycles)
    return "independent-set", len(independent)


def embed_tribes_in_core(
    hypergraph: Hypergraph, tribes: TribesInstance
) -> CoreEmbedding:
    """Construct the Theorem 4.4 BCQ instance for a cyclic simple graph.

    Chooses the larger of the cycle / independent-set embeddings.  For the
    cycle case the universe must be a perfect square (pairs are re-encoded
    over ``[√N]²``); pad the TRIBES universe accordingly.

    Raises:
        ValueError: if arity > 2, too few sites, or (cycle mode) the
            universe size is not a perfect square.
    """
    if hypergraph.arity > 2:
        raise ValueError("core embedding requires arity <= 2")
    mode, capacity = core_embedding_capacity(hypergraph)
    if tribes.m > capacity:
        raise ValueError(
            f"TRIBES has m={tribes.m} pairs but the core embeds {capacity}"
        )
    if mode == "cycles":
        return _embed_on_cycles(hypergraph, tribes)
    return _embed_on_independent_set(hypergraph, tribes)


def _edge_lookup(hypergraph: Hypergraph) -> Dict[frozenset, str]:
    return {verts: name for name, verts in hypergraph.edges()}


def _embed_on_cycles(
    hypergraph: Hypergraph, tribes: TribesInstance
) -> CoreEmbedding:
    n = tribes.universe_size
    side = math.isqrt(n)
    if side * side != n:
        raise ValueError(
            f"cycle embedding needs a square universe size; got {n}"
        )

    def split(value: int) -> Tuple[int, int]:
        return (value // side, value % side)

    cycles = find_disjoint_cycles(hypergraph)[: tribes.m]
    lookup = _edge_lookup(hypergraph)
    domain = tuple(range(side))
    domains = {v: domain for v in hypergraph.vertices}
    factors: Dict[str, Factor] = {}
    s_edges: List[str] = []
    t_edges: List[str] = []

    for cycle, (s_set, t_set) in zip(cycles, tribes.pairs):
        c = list(cycle)
        ordered = c + [c[0]]
        edges = [
            lookup[frozenset((ordered[i], ordered[i + 1]))]
            for i in range(len(c))
        ]
        # R_S on (c1, c2): pairs split(v); R_T on (c2, c3) with reversed
        # coordinates; identity on the remaining cycle edges.
        s_edge, t_edge = edges[0], edges[1]
        s_schema = tuple(sorted((c[0], c[1]), key=str))
        t_schema = tuple(sorted((c[1], c[2 % len(c)]), key=str))
        factors[s_edge] = _pair_factor(
            s_schema, c[0], c[1], [split(v) for v in sorted(s_set)], s_edge
        )
        factors[t_edge] = _pair_factor(
            t_schema, c[2 % len(c)], c[1], [split(v) for v in sorted(t_set)],
            t_edge,
        )
        for name in edges[2:]:
            verts = tuple(sorted(hypergraph.edge(name), key=str))
            factors[name] = Factor.from_tuples(
                verts, [(a, a) for a in domain], BOOLEAN, name
            )
        s_edges.append(s_edge)
        t_edges.append(t_edge)

    for name, verts in hypergraph.edges():
        if name in factors:
            continue
        schema = tuple(sorted(verts, key=str))
        factors[name] = Factor.constant_one(
            schema, {v: domain for v in schema}, BOOLEAN, name
        )
    return CoreEmbedding(
        hypergraph=hypergraph,
        factors=factors,
        domains=domains,
        mode="cycles",
        sites=tuple(tuple(c) for c in cycles),
        s_edges=tuple(s_edges),
        t_edges=tuple(t_edges),
        tribes=tribes,
    )


def _pair_factor(
    schema: Tuple[str, str],
    first_var: str,
    second_var: str,
    pairs: List[Tuple[int, int]],
    name: str,
) -> Factor:
    """A binary relation holding ``pairs`` with (first, second) semantics."""
    tuples = []
    for a, b in pairs:
        row = {first_var: a, second_var: b}
        tuples.append(tuple(row[v] for v in schema))
    return Factor.from_tuples(schema, tuples, BOOLEAN, name)


def _embed_on_independent_set(
    hypergraph: Hypergraph, tribes: TribesInstance
) -> CoreEmbedding:
    n = tribes.universe_size
    filler = 0
    domain = tuple(range(n))
    domains = {v: domain for v in hypergraph.vertices}
    chosen = greedy_independent_set(hypergraph)[: tribes.m]
    factors: Dict[str, Factor] = {}
    s_edges: List[str] = []
    t_edges: List[str] = []
    planted: Set[str] = set()

    for o, (s_set, t_set) in zip(chosen, tribes.pairs):
        incident = sorted(hypergraph.incident_edges(o))
        s_edge, t_edge = incident[0], incident[1]
        for edge, values in ((s_edge, sorted(s_set)), (t_edge, sorted(t_set))):
            schema = tuple(sorted(hypergraph.edge(edge), key=str))
            idx = schema.index(o)
            tuples = []
            for value in values:
                row = [filler] * len(schema)
                row[idx] = value
                tuples.append(tuple(row))
            factors[edge] = Factor.from_tuples(schema, tuples, BOOLEAN, edge)
        planted.update((s_edge, t_edge))
        s_edges.append(s_edge)
        t_edges.append(t_edge)

    chosen_set = set(chosen)
    for name, verts in hypergraph.edges():
        if name in planted:
            continue
        schema = tuple(sorted(verts, key=str))
        touching = [v for v in schema if v in chosen_set]
        if touching:
            o = touching[0]
            idx = schema.index(o)
            tuples = []
            for value in domain:
                row = [filler] * len(schema)
                row[idx] = value
                tuples.append(tuple(row))
            factors[name] = Factor.from_tuples(schema, tuples, BOOLEAN, name)
        else:
            factors[name] = Factor.from_tuples(
                schema, [tuple(filler for _ in schema)], BOOLEAN, name
            )
    return CoreEmbedding(
        hypergraph=hypergraph,
        factors=factors,
        domains=domains,
        mode="independent-set",
        sites=tuple(chosen),
        s_edges=tuple(s_edges),
        t_edges=tuple(t_edges),
        tribes=tribes,
    )
