"""TRIBES and DISJ — the two-party hardness source (Theorem 2.3).

Following the paper's convention (Theorem 2.3), ``DISJ_N(X, Y) = 1`` iff
``X ∩ Y != ∅`` and

    TRIBES_{m,N}(Xbar, Ybar) = AND_i DISJ_N(X_i, Y_i).

Jayram et al. prove ``R(TRIBES_{m,N}) >= Ω(m N)`` in the two-party model;
every lower bound in the paper reduces a TRIBES instance to a BCQ/FAQ
instance and inherits that bound across a min cut.  The *hard
distribution* has ``|X_i ∩ Y_i| <= 1`` for every i (Remark G.5), which the
hash-split argument of Appendix G.6 additionally exploits.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Set, Tuple


@dataclass(frozen=True)
class TribesInstance:
    """One TRIBES_{m,N} input: m set pairs over universe [N] = {0..N-1}.

    Attributes:
        universe_size: ``N``.
        pairs: The ``(S_i, T_i)`` pairs (``m = len(pairs)``).
    """

    universe_size: int
    pairs: Tuple[Tuple[frozenset, frozenset], ...]

    @property
    def m(self) -> int:
        return len(self.pairs)

    def disj(self, i: int) -> bool:
        """``DISJ_N(S_i, T_i)``: True iff the sets intersect (paper sign)."""
        s, t = self.pairs[i]
        return bool(s & t)

    def evaluate(self) -> bool:
        """``TRIBES_{m,N}`` = AND of all DISJ values."""
        return all(self.disj(i) for i in range(self.m))

    def lower_bound_rounds(self) -> float:
        """The Theorem 2.3 two-party bound Ω(m·N), with constant 1."""
        return float(self.m * self.universe_size)


def random_tribes(
    m: int,
    universe_size: int,
    seed: Optional[int] = None,
    density: float = 0.3,
) -> TribesInstance:
    """A uniformly random TRIBES instance (each element i.i.d. present)."""
    rng = random.Random(0 if seed is None else seed)
    pairs = []
    for _ in range(m):
        s = frozenset(
            x for x in range(universe_size) if rng.random() < density
        )
        t = frozenset(
            x for x in range(universe_size) if rng.random() < density
        )
        pairs.append((s, t))
    return TribesInstance(universe_size, tuple(pairs))


def hard_tribes(
    m: int,
    universe_size: int,
    value: bool,
    seed: Optional[int] = None,
) -> TribesInstance:
    """A hard-distribution instance: ``|S_i ∩ T_i| <= 1`` (Remark G.5).

    Args:
        value: The target TRIBES value.  When True every pair intersects
            in exactly one element; when False one uniformly chosen pair is
            made disjoint (the rest intersect in one element).
    """
    rng = random.Random(0 if seed is None else seed)
    if universe_size < 2:
        raise ValueError("universe must have at least two elements")
    pairs: List[Tuple[frozenset, frozenset]] = []
    broken = None if value else rng.randrange(m)
    for i in range(m):
        elements = list(range(universe_size))
        rng.shuffle(elements)
        half = universe_size // 2
        s_part: Set[int] = set(elements[:half])
        t_part: Set[int] = set(elements[half:])
        if i != broken:
            witness = rng.randrange(universe_size)
            s_part.add(witness)
            t_part.add(witness)
        else:
            # Disjoint by construction: s_part and t_part partition [N].
            pass
        pairs.append((frozenset(s_part), frozenset(t_part)))
    instance = TribesInstance(universe_size, tuple(pairs))
    assert instance.evaluate() == value
    return instance


def tribes_round_lower_bound(
    m: int, universe_size: int, mincut_value: int
) -> float:
    """The Lemma 4.4 cut-simulation bound.

    An R-round protocol on G induces a two-party protocol exchanging
    ``R * MinCut * ceil(log2 MinCut)`` bits, so

        R >= Ω( m N / (MinCut * log2 MinCut) ).

    Polylog factors are part of the paper's ``Ω̃``; we keep the
    ``log2(MinCut)`` term explicit and set the constant to 1.
    """
    import math

    if mincut_value < 1:
        raise ValueError("mincut must be positive")
    log_term = max(1.0, math.ceil(math.log2(max(2, mincut_value))))
    return (m * universe_size) / (mincut_value * log_term)
