"""Embedding TRIBES into bounded-arity hypergraph BCQs — Theorem F.8.

For a d-degenerate hypergraph of arity <= r, Theorem F.5 guarantees a
*strong independent set* of attributes (no hyperedge contains two of them)
of size ``|V| / (d (r-1))``; planting one set pair per such attribute — the
sets on two distinct incident hyperedges, fillers elsewhere — yields a BCQ
equivalent to the TRIBES instance, exactly as in the arity-two case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from ..hypergraph import Hypergraph
from ..semiring import BOOLEAN, Factor
from .tribes import TribesInstance


def strong_independent_set(hypergraph: Hypergraph) -> List[str]:
    """A greedy strong independent set (Definition F.4) of attributes
    having at least two incident hyperedges (so a pair can be planted)."""
    chosen: List[str] = []
    blocked: Set = set()
    candidates = sorted(
        (v for v in hypergraph.vertices if hypergraph.degree(v) >= 2),
        key=lambda v: (hypergraph.degree(v), str(v)),
    )
    for v in candidates:
        if v in blocked:
            continue
        chosen.append(v)
        blocked.add(v)
        for edge in hypergraph.incident_edges(v):
            blocked |= hypergraph.edge(edge)
    return chosen


@dataclass
class HypergraphEmbedding:
    """A TRIBES -> BCQ embedding for bounded-arity hypergraphs (Thm F.8).

    Attributes mirror :class:`~repro.lowerbounds.core_embedding.CoreEmbedding`.
    """

    hypergraph: Hypergraph
    factors: Dict[str, Factor]
    domains: Dict[str, Tuple]
    attributes: Tuple[str, ...]
    s_edges: Tuple[str, ...]
    t_edges: Tuple[str, ...]
    tribes: TribesInstance


def embedding_capacity(hypergraph: Hypergraph) -> int:
    """How many pairs the strong-independent-set embedding fits."""
    return len(strong_independent_set(hypergraph))


def embed_tribes_in_hypergraph(
    hypergraph: Hypergraph, tribes: TribesInstance
) -> HypergraphEmbedding:
    """Construct the Theorem F.8 BCQ instance.

    Raises:
        ValueError: if the strong independent set is too small for the
            TRIBES instance.
    """
    sites = strong_independent_set(hypergraph)
    if tribes.m > len(sites):
        raise ValueError(
            f"TRIBES has m={tribes.m} pairs but H embeds {len(sites)}"
        )
    chosen = sites[: tribes.m]
    n = tribes.universe_size
    filler = 0
    domain = tuple(range(n))
    domains = {v: domain for v in hypergraph.vertices}
    factors: Dict[str, Factor] = {}
    s_edges: List[str] = []
    t_edges: List[str] = []

    def planted(schema: Tuple[str, ...], attr: str, values, name: str) -> Factor:
        idx = schema.index(attr)
        tuples = []
        for value in values:
            row = [filler] * len(schema)
            row[idx] = value
            tuples.append(tuple(row))
        return Factor.from_tuples(schema, tuples, BOOLEAN, name)

    for attr, (s_set, t_set) in zip(chosen, tribes.pairs):
        incident = sorted(hypergraph.incident_edges(attr))
        s_edge, t_edge = incident[0], incident[1]
        s_schema = tuple(sorted(hypergraph.edge(s_edge), key=str))
        t_schema = tuple(sorted(hypergraph.edge(t_edge), key=str))
        factors[s_edge] = planted(s_schema, attr, sorted(s_set), s_edge)
        factors[t_edge] = planted(t_schema, attr, sorted(t_set), t_edge)
        s_edges.append(s_edge)
        t_edges.append(t_edge)

    chosen_set = set(chosen)
    for name, verts in hypergraph.edges():
        if name in factors:
            continue
        schema = tuple(sorted(verts, key=str))
        touching = [v for v in schema if v in chosen_set]
        if touching:
            factors[name] = planted(schema, touching[0], domain, name)
        else:
            factors[name] = Factor.from_tuples(
                schema, [tuple(filler for _ in schema)], BOOLEAN, name
            )
    return HypergraphEmbedding(
        hypergraph=hypergraph,
        factors=factors,
        domains=domains,
        attributes=tuple(chosen),
        s_edges=tuple(s_edges),
        t_edges=tuple(t_edges),
        tribes=tribes,
    )
