"""Lower-bound constructions: TRIBES reductions and bound formulas."""

from .bounds import (
    BoundReport,
    bcq_bounds,
    faq_bounds,
    steiner_term,
    structure_parameters,
    table1_gap_budget,
)
from .cut_simulation import (
    CutAccountingError,
    CutTranscript,
    cut_transcript,
    implied_round_lower_bound,
    predicted_crossing_bits,
    verify_cut_accounting,
)
from .core_embedding import (
    CoreEmbedding,
    core_embedding_capacity,
    embed_tribes_in_core,
    find_disjoint_cycles,
    greedy_independent_set,
)
from .forest_embedding import (
    ForestEmbedding,
    embed_tribes_in_forest,
    embedding_capacity,
)
from .hypergraph_embedding import (
    HypergraphEmbedding,
    embed_tribes_in_hypergraph,
    strong_independent_set,
)
from .tribes import (
    TribesInstance,
    hard_tribes,
    random_tribes,
    tribes_round_lower_bound,
)

__all__ = [
    "CutTranscript",
    "CutAccountingError",
    "cut_transcript",
    "verify_cut_accounting",
    "implied_round_lower_bound",
    "predicted_crossing_bits",
    "TribesInstance",
    "random_tribes",
    "hard_tribes",
    "tribes_round_lower_bound",
    "ForestEmbedding",
    "embed_tribes_in_forest",
    "embedding_capacity",
    "CoreEmbedding",
    "embed_tribes_in_core",
    "core_embedding_capacity",
    "find_disjoint_cycles",
    "greedy_independent_set",
    "HypergraphEmbedding",
    "embed_tribes_in_hypergraph",
    "strong_independent_set",
    "BoundReport",
    "bcq_bounds",
    "faq_bounds",
    "steiner_term",
    "structure_parameters",
    "table1_gap_budget",
]
