"""Sensor-network PGM inference — the paper's Appendix A.4 motivation.

A tree of sensors each holds a pairwise potential linking its reading to
its parent's; the base station wants the (normalized) marginal of the root
variable.  This is an FAQ-SS factor marginal over (R>=0, +, x) — the
paper's second headline application — computed *distributed*, over the
physical sensor tree itself, with the paper's protocol.

Run:  python examples/sensor_network_pgm.py
"""

import math

from repro import Planner, Topology
from repro.pgm import brute_force_marginal, marginal, tree_model


def main() -> None:
    # A 2-ary sensor tree of depth 3: 14 potentials, 15 variables.
    model = tree_model(branching=2, depth=3, domain_size=3, seed=7)
    print(f"sensors (factors) : {len(model.factors)}")
    print(f"variables         : {len(model.variables)}")

    # -- Centralized inference (the FAQ engine as a PGM library) ---------
    root_marginal = marginal(model, ("X0",), normalize=True)
    truth = brute_force_marginal(model, ("X0",))
    z = math.fsum(truth.values())
    print("\nP(X0) by message passing vs brute force:")
    for (value,), p in sorted(root_marginal):
        print(f"  X0={value}: {p:.6f}  (brute force {truth[(value,)] / z:.6f})")

    # -- Distributed inference over the physical sensor tree ------------
    # The communication topology mirrors the model tree (each potential
    # lives at the child sensor); the base station is the root player.
    query = model.marginal_query(("X0",))
    h = query.hypergraph
    edges = []
    for name, verts in h.edges():
        u, v = sorted(verts, key=lambda x: int(str(x)[1:]))
        edges.append((f"S{str(u)[1:]}", f"S{str(v)[1:]}"))
    topo = Topology(edges, name="sensor-tree")
    assignment = {}
    for name, verts in h.edges():
        child = max(verts, key=lambda x: int(str(x)[1:]))
        assignment[name] = f"S{str(child)[1:]}"

    report = Planner(query, topo, assignment, output_player="S0").execute()
    print(f"\ndistributed rounds : {report.measured_rounds}")
    print(f"total bits         : {report.protocol.total_bits}")
    print(f"matches centralized: {report.correct}")
    got = {t: v for t, v in report.answer}
    for value in sorted(got):
        print(f"  phi(X0={value[0]}) = {got[value]:.6f}")


if __name__ == "__main__":
    main()
