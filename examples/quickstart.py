"""Quickstart: evaluate a Boolean Conjunctive Query on a network.

Reproduces the setting of Figure 1 / Example 2.2: the star query H1
(R(A,B), S(A,C), T(A,D), U(A,E)) evaluated on the 4-player line G1, with
one relation per player.  The planner compiles the paper's protocol
(broadcast + Steiner-packed set intersection, Algorithm 1), runs it on the
synchronous round simulator and compares the measured round count against
the Theorem 4.1 formulas.

Run:  python examples/quickstart.py
"""

from repro import Hypergraph, Planner, Topology, bcq, scalar_value
from repro.workloads import random_instance


def main() -> None:
    # The star query H1 of Figure 1.
    h1 = Hypergraph(
        {"R": ("A", "B"), "S": ("A", "C"), "T": ("A", "D"), "U": ("A", "E")}
    )
    factors, domains = random_instance(
        h1, domain_size=64, relation_size=48, seed=2024
    )
    query = bcq(h1, factors, domains, name="H1")

    # The line topology G1 of Figure 1, one relation per player.
    g1 = Topology.line(4)
    assignment = {"R": "P0", "S": "P1", "T": "P2", "U": "P3"}

    planner = Planner(query, g1, assignment, output_player="P3")
    report = planner.execute()

    print(f"query            : {query}")
    print(f"topology         : {g1}")
    print(f"assignment       : {assignment}")
    print(f"BCQ answer       : {scalar_value(report.answer)}")
    print(f"matches solver   : {report.correct}")
    print(f"measured rounds  : {report.measured_rounds}")
    print(f"upper bound      : {report.predicted.upper_rounds:.0f}")
    print(f"lower bound      : {report.predicted.lower_rounds:.0f}")
    print(f"measured gap     : {report.measured_gap:.2f}  (Table 1: O~(1))")
    print(f"star phases y(H) : {report.protocol.num_star_phases}")

    # The same query on the clique G2 parallelizes over edge-disjoint
    # Steiner trees (Example 2.3) and uses fewer rounds.
    g2 = Topology.clique(4)
    clique_report = Planner(query, g2, assignment, "P1").execute()
    print(
        f"\nclique rounds    : {clique_report.measured_rounds} "
        f"(vs {report.measured_rounds} on the line — Example 2.3's speedup)"
    )
    assert clique_report.correct


if __name__ == "__main__":
    main()
