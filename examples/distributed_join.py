"""Distributed join-size counting across data centers.

A path join R0(v0,v1) ⋈ R1(v1,v2) ⋈ ... with relations sharded across
machines, evaluated under three assignment policies and two topologies —
showing how the same query's round cost depends on (a) the topology's
Steiner packing (Theorem 3.11) and (b) where the data sits (Section 8's
open question on optimal assignments).  Uses the counting semiring, i.e.
the FAQ-SS query SUM over the full join (join cardinality).

Run:  python examples/distributed_join.py
"""

from repro import COUNTING, FAQQuery, Hypergraph, Planner, Topology, scalar_value
from repro.core import assign_round_robin, assign_single_player
from repro.workloads import random_instance


def run_case(query, topo, assignment, output, label):
    planner = Planner(query, topo, assignment, output_player=output)
    report = planner.execute()
    answer = scalar_value(report.answer)
    print(
        f"  {label:<26} rounds={report.measured_rounds:>6} "
        f"bits={report.protocol.total_bits:>8} |join|={answer} "
        f"{'ok' if report.correct else 'MISMATCH'}"
    )
    return report


def main() -> None:
    h = Hypergraph.path(4)  # R0(v0,v1) .. R3(v3,v4)
    factors, domains = random_instance(
        h, domain_size=24, relation_size=40, seed=42, semiring=COUNTING
    )
    query = FAQQuery(
        h, factors, domains, free_vars=(), semiring=COUNTING, name="count-join"
    )
    print(f"query: count(|{ ' ⋈ '.join(sorted(h.edge_names)) }|), N=40\n")

    for topo in (Topology.line(4), Topology.clique(4)):
        print(f"{topo.name}:")
        run_case(
            query, topo, assign_round_robin(query, topo), None, "round-robin"
        )
        run_case(
            query,
            topo,
            {"R0": "P0", "R1": "P1", "R2": "P2", "R3": "P3"},
            "P3",
            "one relation per player",
        )
        run_case(
            query,
            topo,
            assign_single_player(query, "P0"),
            "P0",
            "co-located (free)",
        )
        print()


if __name__ == "__main__":
    main()
