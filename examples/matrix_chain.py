"""Matrix-chain multiplication on a line — Section 6 end to end.

Runs all three MCM protocols (Proposition 6.1's sequential streaming, the
Appendix I.1 merge, and the trivial ship-everything baseline) on the same
F2 chain, prints the measured round counts against the closed-form
predictions, and shows the k-vs-N crossover the paper proves: sequential
wins for k <= N (Theorem 6.4 says it is *optimal* there), merge wins for
k >> N.

Run:  python examples/matrix_chain.py
"""

import numpy as np

from repro.linalg import f2
from repro.protocols import (
    predicted_rounds,
    run_mcm_merge,
    run_mcm_sequential,
    run_mcm_trivial,
)


def run_chain(k: int, n: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    matrices = [f2.random_matrix(n, rng) for _ in range(k)]
    x = f2.random_vector(n, rng)
    truth = f2.chain_product(matrices, x)
    print(f"\nk={k} matrices of size {n}x{n} over F2 (1 bit/round/edge):")
    rows = []
    for name, runner in (
        ("sequential (Prop 6.1)", run_mcm_sequential),
        ("merge (App I.1)", run_mcm_merge),
        ("trivial (footnote 18)", run_mcm_trivial),
    ):
        report = runner(matrices, x)
        ok = report.result.tolist() == truth.tolist()
        key = name.split(" ")[0]
        predicted = predicted_rounds(k, n, key)
        print(
            f"  {name:<24} rounds={report.rounds:>7} "
            f"predicted~{predicted:>9.0f} bits={report.total_bits:>8} "
            f"{'ok' if ok else 'WRONG'}"
        )
        rows.append((key, report.rounds))
    return dict(rows)


def main() -> None:
    print("=== the k <= N regime: sequential is optimal (Theorem 6.4) ===")
    small = run_chain(k=4, n=16)
    assert small["sequential"] < small["merge"] < small["trivial"]

    print("\n=== the k >> N regime: merge wins (Appendix I.1) ===")
    large = run_chain(k=48, n=4)
    assert large["merge"] < large["sequential"]

    print(
        "\ncrossover: sequential costs ~kN, merge ~N^2 log k + k; "
        "they cross near k ~ N log k, exactly as the paper predicts."
    )


if __name__ == "__main__":
    main()
