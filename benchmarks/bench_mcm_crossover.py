"""M.CROSS — Proposition 6.1 vs Appendix I.1: the k-vs-N crossover.

Sequential streaming costs Θ(kN); the merge protocol costs
O(N² log k + k).  The paper proves sequential optimal for k <= N and
presents the merge as the k >> N alternative.  The bench sweeps k at fixed
N, prints both series, and asserts: sequential wins at small k, merge wins
at large k, and the crossover sits within a constant factor of the
predicted k* ~ N² log(k)/N = N log k.
"""

import numpy as np
import pytest

from repro.linalg import f2
from repro.protocols import predicted_rounds, run_mcm_merge, run_mcm_sequential

N = 6
K_SWEEP = (2, 4, 8, 16, 32, 64)


def instance(k, seed=0):
    rng = np.random.default_rng(seed + k)
    return [f2.random_matrix(N, rng) for _ in range(k)], f2.random_vector(N, rng)


def measure(k):
    mats, x = instance(k)
    truth = f2.chain_product(mats, x)
    seq = run_mcm_sequential(mats, x)
    merge = run_mcm_merge(mats, x)
    assert seq.result.tolist() == truth.tolist()
    assert merge.result.tolist() == truth.tolist()
    return seq.rounds, merge.rounds


def test_crossover_sweep(benchmark):
    results = [measure(k) for k in K_SWEEP[:-1]]
    results.append(
        benchmark.pedantic(measure, args=(K_SWEEP[-1],), rounds=1, iterations=1)
    )
    print(
        f"{'k':>4} {'seq':>7} {'~kN':>7} {'merge':>7} {'~N²logk+k':>10} winner"
    )
    winners = []
    for k, (seq, merge) in zip(K_SWEEP, results):
        winner = "seq" if seq <= merge else "merge"
        winners.append(winner)
        print(
            f"{k:>4} {seq:>7} {predicted_rounds(k, N, 'sequential'):>7.0f} "
            f"{merge:>7} {predicted_rounds(k, N, 'merge'):>10.0f} {winner}"
        )
    # Shape: sequential wins the small-k regime, merge the large-k regime,
    # with a single crossover in between.
    assert winners[0] == "seq"
    assert winners[-1] == "merge"
    flips = sum(1 for a, b in zip(winners, winners[1:]) if a != b)
    assert flips == 1, winners


def test_sequential_tracks_kn(benchmark):
    """Sequential rounds == (k+1) * N exactly at 1 bit/round."""

    def run():
        out = {}
        for k in (2, 8, 32):
            mats, x = instance(k, seed=1)
            out[k] = run_mcm_sequential(mats, x).rounds
        return out

    rounds = benchmark.pedantic(run, rounds=1, iterations=1)
    print("sequential rounds:", rounds)
    for k, r in rounds.items():
        assert r == (k + 1) * N


def test_merge_tracks_n2_logk(benchmark):
    """Merge rounds stay within 2x of N² ceil(log2 k) + 2N + k."""

    def run():
        out = {}
        for k in (4, 16, 64):
            mats, x = instance(k, seed=2)
            out[k] = run_mcm_merge(mats, x).rounds
        return out

    rounds = benchmark.pedantic(run, rounds=1, iterations=1)
    for k, r in rounds.items():
        predicted = predicted_rounds(k, N, "merge")
        print(f"k={k}: merge={r} predicted~{predicted:.0f}")
        assert predicted / 2.2 <= r <= predicted * 2.2
