"""A.ASSIGN — assignment-sensitivity ablation (Section 8 / Appendix G.6).

The paper's bounds hold for worst-case assignments and it lists "optimal
assignments" as future work.  This ablation measures the same hard star
instance under three placements on the line:

* co-located — every relation at the output player (free);
* friendly — Alice/Bob TRIBES sides on the *same* side of the cut;
* adversarial — the Lemma 4.4 worst-case split across the min cut.

Shape asserted: co-located <= friendly <= ~adversarial.
"""

import pytest

from repro.core import Planner, assign_single_player, worst_case_assignment
from repro.faq import bcq
from repro.hypergraph import Hypergraph
from repro.lowerbounds import embed_tribes_in_forest, hard_tribes
from repro.network import Topology

N = 128


def instance(seed=0):
    h = Hypergraph(
        {"R": ("A", "B"), "S": ("A", "C"), "T": ("A", "D"), "U": ("A", "E")}
    )
    emb = embed_tribes_in_forest(h, hard_tribes(1, N, True, seed=seed))
    return emb, bcq(h, emb.factors, emb.domains, name="H1-hard")


def test_assignment_policies(benchmark):
    emb, query = instance()
    topo = Topology.line(4)

    def run(assignment, output):
        report = Planner(query, topo, assignment, output).execute()
        assert report.correct
        return report.measured_rounds

    colocated = run(assign_single_player(query, "P0"), "P0")
    # Friendly: both TRIBES sides on adjacent players near the output.
    friendly_assignment = {
        emb.s_edges[0]: "P0",
        emb.t_edges[0]: "P1",
    }
    for name in query.hypergraph.edge_names:
        friendly_assignment.setdefault(name, "P0")
    friendly = run(friendly_assignment, "P0")
    adversarial_assignment = worst_case_assignment(
        emb.s_edges, emb.t_edges, query.hypergraph.edge_names, topo, topo.nodes
    )
    adversarial = benchmark.pedantic(
        run, args=(adversarial_assignment, None), rounds=1, iterations=1
    )
    print(
        f"co-located : {colocated} rounds\n"
        f"friendly   : {friendly} rounds\n"
        f"adversarial: {adversarial} rounds"
    )
    assert colocated == 0  # all data at the output player: no communication
    assert colocated < friendly
    assert friendly <= adversarial * 1.2  # adversarial is (near-)worst


def test_hash_split_flavor(benchmark):
    """Appendix G.6 flavor: a sharded instance (each relation's tuples
    split by a consistent hash into per-player fragments, modeled as extra
    relations) still runs correctly through the compiled protocol — the
    structural prerequisite for the G.6 hash-split bounds."""
    from repro.semiring import Factor

    emb, query = instance(seed=3)
    topo = Topology.line(4)

    def run_split():
        # Split every relation's tuples by parity of the A-value across
        # two players — a consistent prefix-hash in the G.6 sense; the
        # resulting instance is a new query with twice the relations.
        from repro.hypergraph import Hypergraph

        edges = {}
        factors = {}
        assignment = {}
        owners = ["P0", "P1", "P2", "P3"]
        for i, (name, factor) in enumerate(sorted(query.factors.items())):
            a_idx = factor.schema.index("A")
            for part in (0, 1):
                rows = {
                    t: v for t, v in factor if (t[a_idx] % 2) == part
                }
                pname = f"{name}_{part}"
                edges[pname] = factor.schema
                factors[pname] = Factor(factor.schema, rows, factor.semiring, pname)
                assignment[pname] = owners[(2 * i + part) % 4]
        h = Hypergraph(edges)
        split_query = bcq(h, factors, query.domains, name="H1-split")
        report = Planner(split_query, topo, assignment).execute()
        return report

    report = benchmark.pedantic(run_split, rounds=1, iterations=1)
    print(
        f"hash-split run: rounds={report.measured_rounds} "
        f"correct={report.correct}"
    )
    assert report.correct
