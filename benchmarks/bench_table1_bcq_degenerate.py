"""T1.R3 — Table 1 row 3: BCQ, arbitrary G, d-degenerate, r = 2, gap Õ(d).

Workload: random d-degenerate simple-graph queries for d in {1, 2, 3},
with the Theorem 4.4 adversarial inputs (TRIBES embedded in forest +
core).  The bench asserts the row's claim: the measured gap grows at most
linearly in d (times the polylog allowance) — i.e. gap/d stays bounded.
"""

import pytest

from repro.core import Planner, format_table, gap_within_budget, table1_row
from repro.faq import bcq
from repro.hypergraph import Hypergraph, decompose, simple_graph_degeneracy
from repro.lowerbounds import (
    core_embedding_capacity,
    embed_tribes_in_core,
    hard_tribes,
)
from repro.network import Topology
from repro.workloads import random_d_degenerate_query, random_instance

N = 96


def degenerate_row(d, seed=0):
    h = random_d_degenerate_query(6, d, seed=seed)
    factors, domains = random_instance(h, domain_size=N, relation_size=N, seed=seed)
    query = bcq(h, factors, domains, name=f"d={d}")
    topo = Topology.clique(4)
    return table1_row("bcq-degenerate", Planner(query, topo))


def test_bcq_degenerate_gap_scales_with_d(benchmark):
    rows = [degenerate_row(d) for d in (1, 2)]
    rows.append(benchmark.pedantic(degenerate_row, args=(3,), rounds=1, iterations=1))
    print(format_table(rows))
    for row in rows:
        assert row.correct
        assert gap_within_budget(row), (row.d, row.gap, row.gap_budget)
    # Õ(d) shape: normalized gap (gap / d) bounded across the sweep.
    normalized = [row.gap / row.d for row in rows]
    print("gap/d:", [f"{g:.2f}" for g in normalized])
    assert max(normalized) <= 8 * min(normalized) + 8


def test_adversarial_core_instance(benchmark):
    """The Theorem 4.4 hard instance itself: a cycle query whose inputs
    embed TRIBES; the protocol must still answer correctly and within
    the d-budgeted gap."""

    def run():
        h = Hypergraph.cycle(5)
        _mode, cap = core_embedding_capacity(h)
        tribes = hard_tribes(cap, 16, True, seed=3)
        emb = embed_tribes_in_core(h, tribes)
        query = bcq(h, emb.factors, emb.domains, name="cycle5-hard")
        return table1_row("bcq-degenerate", Planner(query, Topology.ring(5)))

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    print(format_table([row]))
    assert row.correct
    assert gap_within_budget(row, polylog_allowance=128)
