"""T1.R3 — Table 1 row 3: BCQ, arbitrary G, d-degenerate, r = 2, gap Õ(d).

A thin wrapper over the registered ``table1-degenerate`` suite of
:mod:`repro.lab`: random d-degenerate simple-graph BCQs for d in
{1, 2, 3} on a clique.  Keeps the row's shape assertion — the measured
gap grows at most linearly in d (times the polylog allowance), i.e.
gap/d stays bounded.

The Theorem 4.4 adversarial core instance (TRIBES embedded in a cycle's
core) stays a direct test: it needs the embedding's private structure,
which is exactly what the declarative lab boundary abstracts away.
"""

import pytest

from repro.core import Planner, format_table, gap_within_budget, table1_row
from repro.faq import bcq
from repro.hypergraph import Hypergraph
from repro.lab import run_suite, table1_degenerate_suite
from repro.lowerbounds import (
    core_embedding_capacity,
    embed_tribes_in_core,
    hard_tribes,
)
from repro.network import Topology


def run_rows():
    results = run_suite(table1_degenerate_suite()).results
    # Cut-accounting certification holds on every scenario (the formula
    # bound is worst-case; these instances are random).
    assert all(r.bound_ok for r in results)
    return results


def test_bcq_degenerate_gap_scales_with_d(benchmark):
    results = benchmark.pedantic(run_rows, rounds=1, iterations=1)
    rows = [r.to_table1_row() for r in results]
    print(format_table(rows))
    for row in rows:
        assert row.correct
        assert gap_within_budget(row), (row.d, row.gap, row.gap_budget)
    # Õ(d) shape: normalized gap (gap / d) bounded across the sweep.
    normalized = [row.gap / row.d for row in rows]
    print("gap/d:", [f"{g:.2f}" for g in normalized])
    assert max(normalized) <= 8 * min(normalized) + 8


def test_adversarial_core_instance(benchmark):
    """The Theorem 4.4 hard instance itself: a cycle query whose inputs
    embed TRIBES; the protocol must still answer correctly and within
    the d-budgeted gap."""

    def run():
        h = Hypergraph.cycle(5)
        _mode, cap = core_embedding_capacity(h)
        tribes = hard_tribes(cap, 16, True, seed=3)
        emb = embed_tribes_in_core(h, tribes)
        query = bcq(h, emb.factors, emb.domains, name="cycle5-hard")
        return table1_row("bcq-degenerate", Planner(query, Topology.ring(5)))

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    print(format_table([row]))
    assert row.correct
    assert gap_within_budget(row, polylog_allowance=128)
