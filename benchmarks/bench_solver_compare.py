"""Solver comparison — operator-at-a-time vs compiled FAQ query plans.

The compiled-solver layer lowers each FAQ into a cached
:class:`~repro.faq.plan.QueryPlan` (fused join+marginalize kernels over
pool-interned dictionaries) and executes it on
:mod:`repro.faq.executor`.  This bench runs the lab's ``solver-scaling``
suite on *both* solvers and regenerates the ``BENCH_lab.json`` timings
trajectory, asserting the layer's two contracts:

* **exact parity** — every operator/compiled pair agrees on the answer
  digest, the round count and the total bit count (the lab's
  ``parity_failures`` check over the solver axis: byte-identical answers,
  and untouched protocol accounting since the solver only changes free
  internal computation);
* **speedup shape** — on the largest scaling scenario (the ``solver-xl``
  hard-star row at N=32768 on the columnar data plane) the compiled
  solver's reference-solve wall-clock is at least ``SPEEDUP_FLOOR`` times
  faster (in practice 10-16x: shared dictionary interning deletes the
  per-join Python dictionary merges and the fused kernels never
  materialize a joined factor; the 5x floor keeps the assertion robust on
  slow or noisy CI machines).

A second pass over the suite must also be served entirely from the plan
cache — the cross-scenario reuse a grid sweep relies on.
"""

import json

from repro.faq import PLAN_CACHE
from repro.lab import get_suite, run_suite
from repro.lab.report import parity_failures, timings_payload
from repro.lab.suites import with_solvers

from conftest import print_banner

SPEEDUP_FLOOR = 5.0


def test_solver_compare_scaling_suite():
    print_banner("FAQ solvers on the solver-scaling suite: operator vs compiled")
    base = get_suite("solver-scaling")
    suite = with_solvers(base, "solver-scaling", base.description)
    PLAN_CACHE.clear()
    run = run_suite(suite)  # no cache: wall times must be real
    assert run.all_correct, "some scenario disagreed with the reference solver"

    records = [r.deterministic_record() for r in run.results]
    failures = parity_failures(records, "solver")
    assert not failures, f"solver parity violated: {failures}"

    first = PLAN_CACHE.stats
    assert first.misses > 0
    baseline_misses, lookups_before, hits_before = (
        first.misses, first.lookups, first.hits
    )
    rerun = run_suite(suite)
    assert rerun.all_correct
    second = PLAN_CACHE.stats
    assert second.misses == baseline_misses, (
        "plan cache missed on the second sweep: structural keys unstable"
    )
    fresh_lookups = second.lookups - lookups_before
    assert second.hits - hits_before == fresh_lookups, (
        "second sweep was not 100% plan-cache served"
    )
    print(
        f"plan cache: {baseline_misses} compilations for "
        f"{second.lookups} lookups; second sweep 100% hits"
    )

    timings = timings_payload(run)
    header = (
        f"{'scenario':<58} {'rows':>6} {'op ms':>8} {'comp ms':>8} {'speedup':>8}"
    )
    print(header)
    print("-" * len(header))
    for pair in timings["solver_pairs"]:
        speedup = pair["solver_speedup"]
        speedup_col = f"{speedup:>8.1f}" if speedup is not None else f"{'-':>8}"
        print(
            f"{pair['label'].split('/s2')[0][:58]:<58} {pair['rows']:>6} "
            f"{pair['operator_solver_s'] * 1e3:>8.1f} "
            f"{pair['compiled_solver_s'] * 1e3:>8.1f} "
            + speedup_col
        )
    headline = timings["solver_headline"]
    print(
        f"\nlargest scenario ({headline['largest_scenario']}): "
        f"{headline['solver_speedup']:.1f}x"
    )
    print(json.dumps({"solver_headline": headline}, indent=2, sort_keys=True))
    assert headline["solver_speedup"] >= SPEEDUP_FLOOR, (
        f"compiled solver only {headline['solver_speedup']:.1f}x faster on "
        f"the largest scaling scenario (floor {SPEEDUP_FLOOR}x)"
    )
