"""Shared fixtures/helpers for the benchmark harness.

Every bench regenerates one paper artifact (a Table 1 row, a figure, or a
worked example): it measures protocol rounds on the simulator, prints a
paper-style table, and asserts the *shape* of the result (who wins, how
the gap scales), not absolute constants.
"""

import pytest


def print_banner(title: str) -> None:
    print("\n" + "=" * 78)
    print(title)
    print("=" * 78)


@pytest.fixture(autouse=True)
def _newline_before_bench_output():
    print()
    yield
