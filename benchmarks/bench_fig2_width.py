"""F2.GHD — Figure 2: the GHDs T1 (1 internal node) vs T2 (2 internal
nodes) for H2, and the width machinery behind them.

Checks the figure's claims — y(H2) = 1 via T1; T2 is a valid GYO-GHD with
2 internal nodes — and measures the *consequence* the paper draws: the
protocol compiled on T1 runs one star phase and needs fewer rounds than
the same query compiled on T2 (two star phases).
"""

import pytest

from repro.decomposition import GHD, internal_node_width, md_ghd
from repro.faq import bcq, scalar_value, solve_naive
from repro.hypergraph import Hypergraph
from repro.network import Topology
from repro.protocols import run_distributed_faq
from repro.workloads import random_instance

N = 96


def fig1_h2():
    return Hypergraph(
        {
            "R": ("A", "B", "C"),
            "S": ("B", "D"),
            "T": ("C", "F"),
            "U": ("A", "B", "E"),
        }
    )


def ghd_t1(h):
    """T1 of Figure 2: rooted at (A,B,C) with three leaves."""
    t = GHD(h)
    t.add_node("R", ("A", "B", "C"), {"R"})
    t.add_node("S", ("B", "D"), {"S"}, parent="R")
    t.add_node("T", ("C", "F"), {"T"}, parent="R")
    t.add_node("U", ("A", "B", "E"), {"U"}, parent="R")
    t.validate()
    return t


def ghd_t2(h):
    """T2 of Figure 2: rooted at (A,B,E); (A,B,C) is a second internal."""
    t = GHD(h)
    t.add_node("U", ("A", "B", "E"), {"U"})
    t.add_node("R", ("A", "B", "C"), {"R"}, parent="U")
    t.add_node("S", ("B", "D"), {"S"}, parent="R")
    t.add_node("T", ("C", "F"), {"T"}, parent="R")
    t.validate()
    return t


def test_figure2_width_claims(benchmark):
    h = fig1_h2()
    t1, t2 = ghd_t1(h), ghd_t2(h)
    assert t1.num_internal_nodes == 1
    assert t2.num_internal_nodes == 2
    y = benchmark.pedantic(
        internal_node_width, args=(h,), kwargs={"exact": True}, rounds=1, iterations=1
    )
    print(f"y(T1)={t1.num_internal_nodes}  y(T2)={t2.num_internal_nodes}  y(H2)={y}")
    assert y == 1
    # MD-GHD flattening never hurts, and together with re-rooting (both
    # degrees of freedom Construction 2.8 grants) it recovers T1's width.
    assert md_ghd(t2).num_internal_nodes <= t2.num_internal_nodes
    assert md_ghd(t2.rerooted("R")).num_internal_nodes == 1


def test_width_drives_round_count(benchmark):
    """Protocol on T1 (y=1) beats the same instance on T2 (y=2)."""
    h = fig1_h2()
    factors, domains = random_instance(h, domain_size=16, relation_size=N, seed=4)
    query = bcq(h, factors, domains, name="H2")
    topo = Topology.line(4)
    assignment = {"R": "P0", "S": "P1", "T": "P2", "U": "P3"}
    expected = scalar_value(solve_naive(query))

    def run(ghd_builder):
        report = run_distributed_faq(
            query, topo, assignment, ghd=ghd_builder(h)
        )
        assert scalar_value(report.answer) == expected
        return report

    rep1 = run(ghd_t1)
    rep2 = benchmark.pedantic(run, args=(ghd_t2,), rounds=1, iterations=1)
    print(
        f"T1 (1 internal node): {rep1.rounds} rounds, "
        f"{rep1.num_star_phases} star phase(s)\n"
        f"T2 (2 internal nodes): {rep2.rounds} rounds, "
        f"{rep2.num_star_phases} star phase(s)"
    )
    assert rep1.num_star_phases == 1
    assert rep2.num_star_phases == 2
    assert rep1.rounds < rep2.rounds
