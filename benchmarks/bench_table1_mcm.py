"""T1.R5 — Table 1 row 5: MCM on a line, gap O(1) (Section 6).

Proposition 6.1's sequential protocol measured against the Theorem 6.4
lower bound Ω(kN): for k <= N the measured/lower ratio must be a constant
independent of both k and N — the only Table 1 row with *no* polylog gap.
Also checks footnote 18's Θ(kN²) baseline loses by a factor ~N.
"""

import numpy as np
import pytest

from repro.linalg import f2
from repro.protocols import run_mcm_sequential, run_mcm_trivial


def chain(k, n, seed=0):
    rng = np.random.default_rng(seed)
    return [f2.random_matrix(n, rng) for _ in range(k)], f2.random_vector(n, rng)


CASES = [(2, 16), (4, 16), (4, 32), (8, 32)]


def run_case(k, n):
    mats, x = chain(k, n, seed=k * 100 + n)
    report = run_mcm_sequential(mats, x)
    truth = f2.chain_product(mats, x)
    assert report.result.tolist() == truth.tolist()
    lower = k * n  # Theorem 6.4's Ω(kN), constant set to 1
    return report.rounds, lower


def test_mcm_row_constant_gap(benchmark):
    results = [run_case(k, n) for k, n in CASES[:-1]]
    results.append(
        benchmark.pedantic(run_case, args=CASES[-1], rounds=1, iterations=1)
    )
    print(f"{'k':>4} {'N':>4} {'rounds':>8} {'lower kN':>9} {'gap':>6}")
    gaps = []
    for (k, n), (rounds, lower) in zip(CASES, results):
        gap = rounds / lower
        gaps.append(gap)
        print(f"{k:>4} {n:>4} {rounds:>8} {lower:>9} {gap:>6.2f}")
    # O(1) gap: bounded above AND stable across the (k, N) sweep.
    assert all(0.9 <= g <= 3.0 for g in gaps), gaps
    assert max(gaps) <= 1.8 * min(gaps)


def test_mcm_trivial_loses_by_factor_n(benchmark):
    k, n = 3, 12
    mats, x = chain(k, n, seed=5)
    seq = run_mcm_sequential(mats, x)
    trivial = benchmark.pedantic(
        run_mcm_trivial, args=(mats, x), rounds=1, iterations=1
    )
    ratio = trivial.rounds / seq.rounds
    print(
        f"sequential={seq.rounds} trivial={trivial.rounds} "
        f"ratio={ratio:.1f} (~N={n} expected)"
    )
    assert n / 2.5 <= ratio <= n * 2.5
