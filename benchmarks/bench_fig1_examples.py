"""F1.EX — Figure 1 + Examples 2.1-2.4: H0/H1 on the line G1 and clique G2.

The paper's worked examples, measured:

* Example 2.1/2.2 — the star query H1 on the line G1 costs ~N (+O(k))
  rounds (the semijoin-chain / set-intersection protocol);
* Example 2.3 — the same query on the clique G2 costs ~N/2 (+O(1)) by
  splitting Dom(A) over two edge-disjoint paths;
* Example 2.4 — the Ω(N) TRIBES lower bound: we verify the embedded
  instance is decided correctly and that the measured rounds sit between
  the formula lower bound and a constant multiple of it.
"""

import pytest

from repro.core import Planner, worst_case_assignment
from repro.faq import bcq, scalar_value
from repro.hypergraph import Hypergraph
from repro.lowerbounds import bcq_bounds, embed_tribes_in_forest, hard_tribes
from repro.network import Topology
from repro.protocols import run_set_intersection

N = 128


def fig1_h1():
    return Hypergraph(
        {"R": ("A", "B"), "S": ("A", "C"), "T": ("A", "D"), "U": ("A", "E")}
    )


def hard_instance(n=N, seed=0, value=True):
    h = fig1_h1()
    tribes = hard_tribes(1, n, value, seed=seed)
    emb = embed_tribes_in_forest(h, tribes)
    return emb, bcq(h, emb.factors, emb.domains, name="H1")


def test_example_21_set_intersection_line(benchmark):
    """Example 2.1's core task: 4-party set intersection on the line
    takes N + O(k) rounds at one element per round."""
    vectors = {
        f"P{i}": [(j % (i + 2)) != 1 for j in range(N)] for i in range(4)
    }
    expected = [all(vectors[p][j] for p in vectors) for j in range(N)]
    answer, res = benchmark.pedantic(
        run_set_intersection,
        args=(Topology.line(4), vectors, "P3"),
        rounds=1,
        iterations=1,
    )
    print(f"Example 2.1: N={N}, rounds={res.rounds} (paper: N + 2 = {N + 2})")
    assert answer == expected
    assert N <= res.rounds <= N + 12  # N + O(k) with header overheads


def test_example_22_23_line_vs_clique(benchmark):
    """Examples 2.2 vs 2.3: the clique halves the line's round count."""
    emb, query = hard_instance()

    def run(topo, out):
        assignment = {"R": "P0", "S": "P1", "T": "P2", "U": "P3"}
        report = Planner(query, topo, assignment, out).execute()
        assert report.correct
        return report

    line = run(Topology.line(4), "P1")
    clique = benchmark.pedantic(
        run, args=(Topology.clique(4), "P1"), rounds=1, iterations=1
    )
    ratio = line.measured_rounds / clique.measured_rounds
    print(
        f"Example 2.2 (line):   {line.measured_rounds} rounds\n"
        f"Example 2.3 (clique): {clique.measured_rounds} rounds\n"
        f"speedup: {ratio:.2f}x (paper: (N+2)/(N/2+2) -> ~2x)"
    )
    assert 1.4 <= ratio <= 3.0


def test_example_24_lower_bound_certificate(benchmark):
    """Example 2.4: the TRIBES embedding decides the query, the worst-case
    assignment splits it across the min cut, and measured rounds respect
    the Ω(N) formula."""

    def run(value):
        emb, query = hard_instance(value=value, seed=9)
        topo = Topology.line(4)
        assignment = worst_case_assignment(
            emb.s_edges, emb.t_edges, query.hypergraph.edge_names, topo, topo.nodes
        )
        report = Planner(query, topo, assignment).execute()
        assert report.correct
        assert scalar_value(report.answer) == value
        return report

    true_report = run(True)
    false_report = benchmark.pedantic(run, args=(False,), rounds=1, iterations=1)
    bounds = bcq_bounds(fig1_h1(), Topology.line(4), Topology.line(4).nodes, N)
    print(
        f"measured (TRIBES=1): {true_report.measured_rounds} rounds\n"
        f"measured (TRIBES=0): {false_report.measured_rounds} rounds\n"
        f"formula lower bound: {bounds.lower_rounds:.0f}  "
        f"upper: {bounds.upper_rounds:.0f}"
    )
    for report in (true_report, false_report):
        # Shape: within [lower/const, const * lower]: the Ω(N) regime.
        assert report.measured_rounds >= bounds.lower_rounds / 4
        assert report.measured_rounds <= 8 * bounds.lower_rounds
