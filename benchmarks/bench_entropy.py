"""E.ENT — Section 6.2 / Appendices H-I: the min-entropy machinery.

Numerically exact verifications (small F2 spaces, full enumeration) of the
three analytic ingredients of the MCM lower bound:

* Theorem H.9: the inner-product two-source extractor bound;
* Theorem 6.3's shape: matrix-vector multiplication amplifies min-entropy
  (and degrades gracefully as the matrix loses entropy);
* Appendix I.3: the Shannon-entropy counterexample — conditional Shannon
  entropy of Ax collapses to ~half of H(x), so the induction *must* use
  min-entropy.
"""

import pytest

from repro.entropy import (
    inner_product_distance,
    matvec_min_entropy,
    min_entropy,
    planted_deficiency_matrices,
    shannon_counterexample,
    theorem_h9_bound,
    uniform,
    uniform_matrices,
)


def test_theorem_h9_sweep(benchmark):
    """Extractor distance vs bound over a sweep of source entropies."""

    def run():
        rows = []
        n = 4
        for support_bits in (4, 3, 2):
            dy = uniform(2**support_bits)
            dist = inner_product_distance(dy, uniform(2**n), n)
            bound = theorem_h9_bound(n, support_bits, n)
            rows.append((support_bits, dist, bound))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"{'H∞(y)':>6} {'distance':>10} {'H.9 bound':>10}")
    for h, dist, bound in rows:
        print(f"{h:>6} {dist:>10.5f} {bound:>10.5f}")
        assert dist <= bound + 1e-12
    # Distance decays as total entropy rises.
    dists = [dist for _h, dist, _b in rows]
    assert dists == sorted(dists)


def test_theorem_63_amplification_table(benchmark):
    """H∞(Ax) as A's deficiency grows: full-entropy A nearly saturates
    H∞(Ax); each fixed (zeroed) row costs amplification."""

    def run():
        n = 3
        dx = {1: 0.5, 2: 0.25, 4: 0.25}  # H∞(x) = 1
        rows = [("uniform", matvec_min_entropy(uniform_matrices(n), dx, n))]
        for fixed in (1, 2):
            rows.append(
                (
                    f"{fixed} zero row(s)",
                    matvec_min_entropy(
                        planted_deficiency_matrices(n, fixed), dx, n
                    ),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"{'A distribution':>16} {'H∞(Ax)':>8}   (H∞(x) = 1, n = 3)")
    for label, h in rows:
        print(f"{label:>16} {h:>8.3f}")
    values = [h for _l, h in rows]
    assert values[0] >= 2.5  # near-full amplification under uniform A
    assert values[0] > values[1] > values[2]  # monotone degradation


def test_shannon_counterexample_table(benchmark):
    """Appendix I.3: H(Ax | f(A), x) ≈ H(x)/2 — Shannon entropy fails."""

    def run():
        return [shannon_counterexample(n, max(1, n // 8)) for n in (8, 16, 24)]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"{'n':>4} {'alpha':>6} {'H(x)':>8} {'H(Ax|f(A),x)':>14} {'ratio':>6}")
    for out in rows:
        ratio = out["h_x"] / max(out["h_ax_given_fa_x"], 1e-9)
        print(
            f"{out['n']:>4.0f} {out['alpha']:>6.3f} {out['h_x']:>8.3f} "
            f"{out['h_ax_given_fa_x']:>14.3f} {ratio:>6.2f}"
        )
        assert out["h_ax_given_fa_x"] <= out["claimed_upper"] + 1e-9
        assert 1.5 <= ratio <= 2.6  # "about a factor two" (App. I.3)


def test_min_entropy_never_exceeds_shannon(benchmark):
    from repro.entropy import shannon_entropy

    def run():
        dists = [
            {0: 0.7, 1: 0.2, 2: 0.1},
            uniform(16),
            {0: 0.5, 1: 0.5},
        ]
        return [(min_entropy(d), shannon_entropy(d)) for d in dists]

    pairs = benchmark.pedantic(run, rounds=1, iterations=1)
    for h_min, h_sh in pairs:
        assert h_min <= h_sh + 1e-12
