"""T1.R4 — Table 1 row 4: FAQ, arbitrary G, arity r hypergraphs, gap Õ(d²r²).

A thin wrapper over the registered ``table1-hypergraph`` suite of
:mod:`repro.lab`: random bounded-arity acyclic hypergraph FAQ-SS queries
(counting semiring) on a clique over an arity sweep.  Keeps the row's
assertions — correctness and the measured gap staying within the d²r²
budget — and the Θ(N) scaling check, now phrased as an inline lab grid.
"""

import pytest

from repro.core import format_table, gap_within_budget
from repro.lab import SuiteSpec, expand_grid, run_suite, table1_hypergraph_suite


def run_rows():
    results = run_suite(table1_hypergraph_suite()).results
    # Cut-accounting certification holds on every scenario (the formula
    # bound is worst-case; these instances are random).
    assert all(r.bound_ok for r in results)
    return results


def test_faq_hypergraph_rows(benchmark):
    results = benchmark.pedantic(run_rows, rounds=1, iterations=1)
    rows = [r.to_table1_row() for r in results]
    print(format_table(rows))
    for row in rows:
        assert row.correct
        assert gap_within_budget(row), (row.r, row.gap, row.gap_budget)


def test_faq_hypergraph_n_scaling(benchmark):
    """Rounds scale linearly in N for fixed structure (the Θ(N) shape)."""
    suite = SuiteSpec(
        name="hypergraph-n-scaling",
        scenarios=expand_grid(
            dict(
                family="faq-hypergraph",
                query="acyclic",
                query_params={"edges": 4, "arity": 3},
                topology="clique",
                topology_params={"n": 4},
                domain_size=16,
                semiring="counting",
                seed=7,
            ),
            n=[48, 96],
        ),
    )
    results = benchmark.pedantic(
        lambda: run_suite(suite).results, rounds=1, iterations=1
    )
    assert all(r.correct for r in results)
    small, large = (r.measured_rounds for r in results)
    print(f"rounds: N=48 -> {small}, N=96 -> {large}")
    assert 1.3 <= large / small <= 3.0
