"""T1.R4 — Table 1 row 4: FAQ, arbitrary G, arity r hypergraphs, gap Õ(d²r²).

Workload: random bounded-arity acyclic hypergraph FAQ-SS queries (counting
semiring) on a clique, over an (arity) sweep.  Asserts correctness and
that the measured gap stays within the d²r² budget; also reports the
Theorem F.8 strong-independent-set capacity that drives the lower bound.
"""

import pytest

from repro.core import Planner, format_table, gap_within_budget, table1_row
from repro.faq import FAQQuery
from repro.lowerbounds import strong_independent_set
from repro.network import Topology
from repro.semiring import COUNTING
from repro.workloads import random_acyclic_hypergraph, random_instance

N = 64


def hypergraph_row(arity, seed=0):
    h = random_acyclic_hypergraph(5, arity, seed=seed)
    factors, domains = random_instance(
        h, domain_size=16, relation_size=N, seed=seed, semiring=COUNTING
    )
    query = FAQQuery(
        h, factors, domains, free_vars=(), semiring=COUNTING, name=f"r={arity}"
    )
    topo = Topology.clique(5)
    row = table1_row("faq-hypergraph", Planner(query, topo))
    return row, len(strong_independent_set(h))


def test_faq_hypergraph_rows(benchmark):
    results = [hypergraph_row(r) for r in (2, 3)]
    results.append(
        benchmark.pedantic(hypergraph_row, args=(4,), rounds=1, iterations=1)
    )
    rows = [r for r, _cap in results]
    print(format_table(rows))
    for (row, cap) in results:
        print(f"  arity r={row.r:.0f}: strong-independent-set capacity = {cap}")
        assert row.correct
        assert gap_within_budget(row), (row.r, row.gap, row.gap_budget)


def test_faq_hypergraph_n_scaling(benchmark):
    """Rounds scale linearly in N for fixed structure (the Θ(N) shape)."""

    def run(n):
        h = random_acyclic_hypergraph(4, 3, seed=7)
        factors, domains = random_instance(
            h, domain_size=16, relation_size=n, seed=7, semiring=COUNTING
        )
        query = FAQQuery(h, factors, domains, semiring=COUNTING)
        report = Planner(query, Topology.clique(4)).execute()
        assert report.correct
        return report.measured_rounds

    small = run(48)
    large = benchmark.pedantic(run, args=(96,), rounds=1, iterations=1)
    print(f"rounds: N=48 -> {small}, N=96 -> {large}")
    assert 1.3 <= large / small <= 3.0
