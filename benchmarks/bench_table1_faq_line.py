"""T1.R1 — Table 1 row 1: FAQ, line topology, d = O(1), r = O(1), gap Õ(1).

A thin wrapper over the registered ``table1-line`` suite of
:mod:`repro.lab`: the hard (TRIBES-embedded) star BCQ on a line with the
Lemma 4.4 worst-case assignment across the min cut, over an N-doubling
sweep.  The lab runner executes the scenarios; this bench keeps the
row's shape assertions:

* the measured gap stays within a constant (Õ(1)) budget as N doubles;
* rounds scale linearly in N (the Θ(N) behaviour the row claims).
"""

import pytest

from repro.core import bound_certified, format_table, gap_within_budget
from repro.lab import run_suite, table1_line_suite


def run_rows():
    results = run_suite(table1_line_suite()).results
    assert all(r.gap is not None for r in results)
    assert all(r.bound_ok for r in results)
    return results


def test_faq_line_row(benchmark):
    results = benchmark.pedantic(run_rows, rounds=1, iterations=1)
    rows = [r.to_table1_row() for r in results]
    print(format_table(rows))
    for row in rows:
        assert row.correct
        assert gap_within_budget(row), (row.label, row.gap, row.gap_budget)
        # Hard (TRIBES) instance under worst-case placement: the formula
        # lower bound is certified on the run itself.
        assert bound_certified(row), (row.measured_rounds, row.lower_formula)
    # Linear-in-N shape: doubling N roughly doubles the rounds.
    for a, b in zip(rows, rows[1:]):
        ratio = b.measured_rounds / a.measured_rounds
        assert 1.4 <= ratio <= 2.8, (a.measured_rounds, b.measured_rounds)


def test_faq_line_gap_constant_across_n(benchmark):
    """The Õ(1) claim: the gap does not grow with N."""
    results = benchmark.pedantic(run_rows, rounds=1, iterations=1)
    gaps = [r.gap for r in results]
    print("gaps over N:", [f"{g:.2f}" for g in gaps])
    assert max(gaps) <= 2.5 * min(gaps)
