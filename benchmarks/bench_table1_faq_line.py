"""T1.R1 — Table 1 row 1: FAQ, line topology, d = O(1), r = O(1), gap Õ(1).

Workload: the hard (TRIBES-embedded) star and path BCQ/FAQ instances on a
line, with the Lemma 4.4 worst-case assignment across the min cut.  The
bench measures protocol rounds, compares them to the Theorem 4.1/5.1
formulas, prints the Table 1 row and asserts:

* the measured gap stays within a constant (Õ(1)) budget as N doubles;
* rounds scale linearly in N (the Θ(N) behaviour the row claims).
"""

import pytest

from repro.core import Planner, table1_row, format_table, gap_within_budget, worst_case_assignment
from repro.faq import bcq
from repro.hypergraph import Hypergraph
from repro.lowerbounds import embed_tribes_in_forest, embedding_capacity, hard_tribes
from repro.network import Topology

SIZES = (64, 128, 256)


def hard_star_instance(n, seed=0):
    h = Hypergraph(
        {"R": ("A", "B"), "S": ("A", "C"), "T": ("A", "D"), "U": ("A", "E")}
    )
    tribes = hard_tribes(embedding_capacity(h), n, True, seed=seed)
    emb = embed_tribes_in_forest(h, tribes)
    return emb, bcq(h, emb.factors, emb.domains, name="H1-star")


def run_row(n):
    emb, query = hard_star_instance(n)
    topo = Topology.line(4)
    assignment = worst_case_assignment(
        emb.s_edges, emb.t_edges, query.hypergraph.edge_names, topo, topo.nodes
    )
    planner = Planner(query, topo, assignment)
    return table1_row("faq-line", planner)


def test_faq_line_row(benchmark):
    rows = [run_row(n) for n in SIZES[:-1]]
    rows.append(benchmark.pedantic(run_row, args=(SIZES[-1],), rounds=1, iterations=1))
    print(format_table(rows))
    for row in rows:
        assert row.correct
        assert gap_within_budget(row), (row.label, row.gap, row.gap_budget)
    # Linear-in-N shape: doubling N roughly doubles the rounds.
    for a, b in zip(rows, rows[1:]):
        ratio = b.measured_rounds / a.measured_rounds
        assert 1.4 <= ratio <= 2.8, (a.measured_rounds, b.measured_rounds)


def test_faq_line_gap_constant_across_n(benchmark):
    """The Õ(1) claim: the gap does not grow with N."""
    rows = benchmark.pedantic(
        lambda: [run_row(n) for n in SIZES], rounds=1, iterations=1
    )
    gaps = [row.gap for row in rows]
    print("gaps over N:", [f"{g:.2f}" for g in gaps])
    assert max(gaps) <= 2.5 * min(gaps)
