"""Fuzz certification — the randomized differential oracle as a bench.

Runs a seeded fuzz sweep (generated scenarios x the full
engine x solver x backend grid) and asserts the two contracts the fuzzed
scenario plane exists to enforce:

* **zero bound violations** — every run satisfies the Lemma 4.4
  cut-accounting round bound, and TRIBES-embedded worst-case runs push
  at least the embedded instance's content across the min cut (the
  ``m * N`` bits floor);
* **zero parity failures** — answer digests, round counts and total bits
  agree pairwise along every axis.

The sweep is smaller than the registered ``fuzz`` suite (which CI runs
via the CLI) but uses the same generator, so a regression here is a
regression there.
"""

from repro.lab import (
    all_parity_failures,
    bound_violations,
    certification_payload,
    fuzz_suite,
    run_suite,
)

#: Distinct from the suites' DEFAULT_SEED so this bench explores a
#: different slice of the scenario space than the CI fuzz job.
BENCH_SEED = 424242

#: Base scenarios; x8 planes = 96 runs.
BENCH_COUNT = 12


def run_sweep():
    run = run_suite(fuzz_suite(BENCH_SEED, count=BENCH_COUNT, name="fuzz-bench"))
    assert run.all_correct
    return run


def test_fuzz_sweep_certifies_bounds_and_parity(benchmark):
    run = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    records = [r.deterministic_record() for r in run.results]
    assert len(records) == 8 * BENCH_COUNT

    violations = bound_violations(records)
    assert violations == [], violations
    failures = all_parity_failures(records)
    assert failures == [], failures

    cert = certification_payload(records)
    print(
        f"\nfuzz-bench: {cert['scenarios_checked']} scenarios, "
        f"{cert['formula_certified']} formula-certified, "
        f"{cert['cut_checked']} cut-certified, 0 violations"
    )
    # The sweep must actually exercise both oracles.
    assert cert["formula_certified"] > 0
    assert cert["cut_checked"] > cert["formula_certified"]
    # The bits floor actually bound something on every certified run.
    for r in records:
        if r["formula_certified"]:
            assert r["cut_bits"] >= r["tribes_bits_floor"] > 0
