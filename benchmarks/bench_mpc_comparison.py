"""A.MPC — Appendix A: our model instantiated on the MPC(0) topology.

Appendix A.1.4 claims that on the MPC(0) network G' (k input nodes fully
connected to a p-worker clique) with per-edge capacity L' = N/p, the
paper's Steiner-packing protocol computes star BCQs in O(1) rounds —
matching MPC(0)'s one-round result up to constants.  The bench:

* builds G', checks the explicit p-tree diameter-2 packing;
* runs the actual distributed protocol at capacity L' and asserts the
  round count is a small constant independent of N;
* contrasts with the same query on a line at unit tuple capacity (Θ(N)).
"""

import pytest

from repro.core import Planner
from repro.faq import bcq, scalar_value, solve_naive
from repro.hypergraph import Hypergraph
from repro.network import Simulator, Topology
from repro.network.mpc import (
    build_mpc0_topology,
    compare_star_bounds,
    input_node,
    mpc_edge_capacity,
    mpc_star_packing,
)
from repro.protocols.faq_protocol import _make_player, compile_plan
from repro.workloads import random_instance

K, P = 4, 8


def star_query(n, seed=0):
    h = Hypergraph(
        {f"R{i}": ("A", f"B{i}") for i in range(K)}
    )
    factors, domains = random_instance(h, domain_size=max(16, n), relation_size=n, seed=seed)
    return bcq(h, factors, domains, name=f"star{K}")


def run_on_mpc(n, seed=0):
    query = star_query(n, seed)
    topo = build_mpc0_topology(K, P)
    assignment = {f"R{i}": input_node(i) for i in range(K)}
    capacity = mpc_edge_capacity(K, n * query.bits_per_tuple(), P)
    plan = compile_plan(query, topo, assignment)
    # Override the model capacity with the MPC L' (eq. 13).
    plan.capacity_bits = max(plan.capacity_bits, capacity)
    sim = Simulator(topo, plan.capacity_bits, max_rounds=200_000)
    result = sim.run({node: _make_player(plan, node) for node in topo.nodes})
    answer = result.output_of(plan.output_player)
    assert answer == solve_naive(query)
    return result.rounds


def test_explicit_packing_shape(benchmark):
    packing = benchmark.pedantic(mpc_star_packing, args=(K, P), rounds=1, iterations=1)
    assert len(packing) == P
    seen = set()
    for tree in packing:
        assert tree.terminal_diameter() == 2
        for edge in tree.edges:
            assert edge not in seen
            seen.add(edge)
    comparison = compare_star_bounds(K, P, 512)
    print(
        f"packing: {P} trees of diameter 2; "
        f"steiner term N/p+2 = {comparison.steiner_rounds:.0f} tuples; "
        f"at L'=N/p: {comparison.rounds_at_mpc_capacity:.1f} rounds (O(1))"
    )
    assert comparison.rounds_at_mpc_capacity <= 8


def test_constant_rounds_at_mpc_capacity(benchmark):
    """Measured rounds on G' with L'=N/p stay constant as N doubles."""
    r1 = run_on_mpc(64)
    r2 = benchmark.pedantic(run_on_mpc, args=(128,), rounds=1, iterations=1)
    print(f"MPC(0) G', L'=N/p: rounds at N=64 -> {r1}, N=128 -> {r2}")
    assert r2 <= r1 + 4  # O(1): no growth with N beyond rounding
    assert r2 <= 40


def test_line_needs_theta_n_in_contrast(benchmark):
    """The same star on a 4-line at unit-tuple capacity costs Θ(N)."""

    def run(n):
        query = star_query(n, seed=1)
        topo = Topology.line(4)
        report = Planner(query, topo).execute()
        assert report.correct
        return report.measured_rounds

    r64 = run(64)
    r128 = benchmark.pedantic(run, args=(128,), rounds=1, iterations=1)
    print(f"line: rounds at N=64 -> {r64}, N=128 -> {r128}")
    assert 1.5 <= r128 / r64 <= 2.6
