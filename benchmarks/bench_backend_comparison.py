"""Backend comparison — dict vs columnar data plane on Table-1-scale inputs.

Every ``bench_table1_*`` workload bottoms out in the factor algebra of
``repro.faq.operations`` (join, ⊕-marginalization, projection).  This bench
pits the two storage backends against each other on exactly that hot path,
at the listing sizes the Table 1 rows use (N in the 10^5 range after the
join fan-out):

* **operator workload** — a counting-semiring chain join
  ``R(A,B) ⋈ S(B,C)`` followed by ⊕-marginalizing ``B`` and projecting to
  ``A``: the inner loop of every FAQ solver;
* **solver workload** — a full natural-join query solved end-to-end via
  ``solve_variable_elimination(query, backend=...)``.

It prints a comparison table and asserts:

* both backends return **byte-identical** answers (exact dict equality on
  integer counting annotations, not tolerance equality);
* the columnar backend is **at least 5x faster** on the operator workload
  (in practice 20-100x; the 5x floor keeps the assertion robust on slow or
  noisy CI machines);
* the one-time dict->columnar encoding cost is itself far below a single
  dict-path run, so converting *pays off within one operator*.
"""

import json
import random
import time

from repro.faq import join, marginalize, natural_join_query, project, solve_variable_elimination
from repro.hypergraph import Hypergraph
from repro.lab import get_suite, run_suite
from repro.semiring import (
    BACKEND_COLUMNAR,
    BACKEND_DICT,
    COUNTING,
    ColumnarFactor,
    Factor,
)

from conftest import print_banner

# Table-1-scale: ~1e5-row inputs, join fan-out ~10 => ~1e6-row intermediate.
N_ROWS = 80_000
JOIN_KEY_DOMAIN = 8_000
VALUE_DOMAIN = 40_000
SPEEDUP_FLOOR = 5.0


def _counting_relation(schema, key_positions, size, seed):
    """A random counting-semiring relation; join keys drawn from the
    smaller JOIN_KEY_DOMAIN so the join fans out ~size/JOIN_KEY_DOMAIN."""
    rng = random.Random(seed)
    rows = {}
    while len(rows) < size:
        key = tuple(
            rng.randrange(JOIN_KEY_DOMAIN if i in key_positions else VALUE_DOMAIN)
            for i in range(len(schema))
        )
        rows[key] = rng.randint(1, 9)
    return Factor(schema, rows, COUNTING)


def _best_of(fn, repeats):
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _operator_pipeline(r, s):
    joined = join(r, s)
    reduced = marginalize(joined, "B")
    return project(reduced, ("A",)), len(joined)


def test_operator_workload_speedup_and_identical_answers():
    r_dict = _counting_relation(("A", "B"), {1}, N_ROWS, seed=1)
    s_dict = _counting_relation(("B", "C"), {0}, N_ROWS, seed=2)

    t0 = time.perf_counter()
    r_col = ColumnarFactor.from_factor(r_dict)
    s_col = ColumnarFactor.from_factor(s_dict)
    encode_s = time.perf_counter() - t0

    dict_s, (dict_answer, joined_rows) = _best_of(
        lambda: _operator_pipeline(r_dict, s_dict), repeats=1
    )
    col_s, (col_answer, col_joined_rows) = _best_of(
        lambda: _operator_pipeline(r_col, s_col), repeats=3
    )
    speedup = dict_s / col_s

    print_banner("backend comparison — operator hot path (counting semiring)")
    print(f"  inputs: 2 x {N_ROWS} rows, join fan-out ~{N_ROWS // JOIN_KEY_DOMAIN}, "
          f"joined rows = {joined_rows}")
    print(f"  {'backend':<10} {'join+marg+proj':>16} {'encode':>10}")
    print(f"  {'dict':<10} {dict_s:>14.3f}s {'-':>10}")
    print(f"  {'columnar':<10} {col_s:>14.3f}s {encode_s:>9.3f}s")
    print(f"  speedup: {speedup:.1f}x (floor asserted: {SPEEDUP_FLOOR}x)")

    # Byte-identical answers: exact equality of the row dicts — integer
    # counting annotations, no tolerance involved.
    assert isinstance(col_answer, ColumnarFactor)
    assert joined_rows == col_joined_rows
    assert dict_answer.schema == col_answer.schema
    assert dict_answer.rows == col_answer.rows
    assert all(type(v) is int for v in col_answer.rows.values())

    assert speedup >= SPEEDUP_FLOOR, (
        f"columnar backend only {speedup:.1f}x faster (< {SPEEDUP_FLOOR}x)"
    )
    # Converting to columnar pays for itself within one dict-path run.
    assert encode_s < dict_s


def test_solver_workload_parity_and_speedup():
    h = Hypergraph({"R1": ("X1", "X2"), "R2": ("X2", "X3")})
    rng = random.Random(7)
    size, key_dom = 30_000, 3_000
    factors = {}
    for name, schema in (("R1", ("X1", "X2")), ("R2", ("X2", "X3"))):
        rows = set()
        while len(rows) < size:
            rows.add((rng.randrange(key_dom if schema[0] == "X2" else VALUE_DOMAIN),
                      rng.randrange(key_dom if schema[1] == "X2" else VALUE_DOMAIN)))
        factors[name] = Factor.from_tuples(schema, rows, name=name)
    domains = {"X1": range(VALUE_DOMAIN), "X2": range(key_dom), "X3": range(VALUE_DOMAIN)}
    query = natural_join_query(h, factors, domains)

    dict_s, dict_answer = _best_of(
        lambda: solve_variable_elimination(query, backend=BACKEND_DICT), repeats=1
    )
    col_s, col_answer = _best_of(
        lambda: solve_variable_elimination(query, backend=BACKEND_COLUMNAR), repeats=2
    )
    speedup = dict_s / col_s

    print_banner("backend comparison — solve_variable_elimination(natural join)")
    print(f"  inputs: 2 x {size} rows; output rows = {len(dict_answer)}")
    print(f"  dict: {dict_s:.3f}s   columnar: {col_s:.3f}s   speedup: {speedup:.1f}x")

    # Byte-identical Boolean answers (True annotations, exact dict equality;
    # the columnar solve also pays its own encode cost inside the timing).
    assert dict_answer.schema == col_answer.schema
    assert dict_answer.rows == col_answer.rows
    assert speedup >= 2.0, f"solver speedup only {speedup:.1f}x"


def test_backend_parity_end_to_end_via_lab():
    """The ``backend-compare`` lab suite: full distributed executions on
    identical scenarios, dict vs columnar.  Answers (by content digest),
    round counts and correctness must match pairwise — the backend is a
    data-plane choice and must never change protocol behaviour."""
    run = run_suite(get_suite("backend-compare"))
    pairs = {}
    for result in run.results:
        spec = result.spec.to_json_dict()
        backend = spec.pop("backend")
        pairs.setdefault(json.dumps(spec, sort_keys=True), {})[backend] = result

    print_banner("backend parity — distributed protocol via repro.lab")
    assert pairs and all(len(group) == 2 for group in pairs.values())
    for group in pairs.values():
        a, b = group["dict"], group["columnar"]
        print(
            f"  {a.query_name:<16} {a.topology_name:<16} rounds={a.measured_rounds}"
        )
        assert a.correct and b.correct
        assert a.measured_rounds == b.measured_rounds
        assert a.answer_digest == b.answer_digest
