"""Sustained-QPS / p99 benchmark of the serving plane.

Drives the persistent :class:`~repro.serve.QueryService` with two client
shapes over a fuzz-sampled workload of registered session identities
(including duplicate requests and structurally identical seed twins, so
both coalescing paths fire):

* **closed loop** — C concurrent clients, each submitting its next
  query the moment the previous answer lands: sustained throughput.
* **open loop** — Poisson arrivals (seeded, deterministic schedule) at
  a rate derived from the measured capacity: tail latency under an
  arrival process that does not wait for the service.

The baseline is the *cold per-query* ``Planner`` pipeline the lab runs:
per query, cleared memo/plan caches, materialization, protocol-plan
compilation, protocol execution and the reference solve.  The committed
``BENCH_serving.json`` records the warm-served ÷ cold QPS ratio; CI
re-measures both sides in one process and gates on 80% of the committed
ratio (machine-neutral, mirroring the batched-runner throughput gate).

Every served answer is asserted digest-identical to its cold
``Planner.execute`` answer — the speedup is bought by warm state
(shared materialization, hot plan caches, interned dictionaries,
stacked/coalesced execution), never by weakening the answer contract.

Run as a script to (re)generate the artifact::

    PYTHONPATH=src python benchmarks/bench_serving.py --out .
"""

import asyncio
import json
import random
import time

from repro import kernels
from repro.core.memo import clear_all_memos
from repro.core.planner import Planner
from repro.faq.plan import PLAN_CACHE
from repro.lab.batch import structural_signature
from repro.lab.generate import generate_scenarios
from repro.lab.results import answer_digest, percentile
from repro.lab.runner import materialize_scenario
from repro.serve import AdmissionPolicy, QueryService, ServeError, session_id_of

#: Distinct from suite seeds: the bench explores its own slice.
BENCH_SEED = 20260807

#: Distinct session identities registered with the service.
BENCH_SESSIONS = 12

#: Closed-loop shape: clients x requests each.
CLIENTS = 16
REQUESTS_PER_CLIENT = 15

#: The acceptance-criteria floor: warm served QPS >= 5x cold QPS.
SPEEDUP_FLOOR = 5.0


def build_workload():
    """The registered identities, guaranteed to contain a twin pair."""
    specs = list(generate_scenarios(BENCH_SEED, BENCH_SESSIONS - 2))
    for spec in generate_scenarios(BENCH_SEED + 1, 40):
        twin = spec.with_(seed=spec.seed + 1)
        try:
            sig = structural_signature(materialize_scenario(spec)[0].query)
            twin_sig = structural_signature(
                materialize_scenario(twin)[0].query
            )
        except Exception:
            continue
        if sig is not None and sig == twin_sig and (
            session_id_of(spec) != session_id_of(twin)
        ):
            specs.extend((spec, twin))
            break
    else:  # pragma: no cover - sample-dependent
        specs.extend(generate_scenarios(BENCH_SEED + 2, 2))
    return specs


def cold_execute(spec):
    """One cold per-query pipeline: the lab's serial path from scratch."""
    clear_all_memos()
    PLAN_CACHE.clear()
    built, topology, assignment = materialize_scenario(spec)
    with kernels.use_tier(spec.kernels):
        planner = Planner(
            built.query, topology, assignment=assignment,
            backend=spec.backend, engine=spec.engine, solver=spec.solver,
        )
        report = planner.execute(max_rounds=spec.max_rounds)
    assert report.correct
    return answer_digest(report.answer.schema, report.answer.rows)


def measure_cold(specs):
    start = time.perf_counter()
    digests = {session_id_of(spec): cold_execute(spec) for spec in specs}
    seconds = time.perf_counter() - start
    # The baseline must not leak warm state into the serving run.
    clear_all_memos()
    PLAN_CACHE.clear()
    return digests, {
        "queries": len(specs),
        "seconds": seconds,
        "qps": len(specs) / seconds,
    }


async def run_closed_loop(service, specs, expected):
    """C clients, each back-to-back: sustained capacity."""
    stream = [specs[i % len(specs)] for i in range(
        CLIENTS * REQUESTS_PER_CLIENT
    )]
    per_client = [stream[c::CLIENTS] for c in range(CLIENTS)]
    latencies = []

    async def client(requests):
        for spec in requests:
            result = await service.submit(spec)
            assert result.digest == expected[result.session_id]
            latencies.append(result.latency_s)

    start = time.perf_counter()
    await asyncio.gather(*(client(reqs) for reqs in per_client))
    seconds = time.perf_counter() - start
    return {
        "clients": CLIENTS,
        "queries": len(stream),
        "seconds": seconds,
        "qps": len(stream) / seconds,
        "p50_ms": percentile(latencies, 50) * 1000,
        "p99_ms": percentile(latencies, 99) * 1000,
    }


async def run_open_loop(service, specs, expected, offered_qps):
    """Poisson arrivals at a fixed offered rate (seeded schedule)."""
    rng = random.Random(BENCH_SEED)
    count = CLIENTS * REQUESTS_PER_CLIENT
    arrivals, clock = [], 0.0
    for index in range(count):
        clock += rng.expovariate(offered_qps)
        arrivals.append((clock, specs[index % len(specs)]))
    latencies = []

    async def fire(delay, spec):
        await asyncio.sleep(delay)
        result = await service.submit(spec)
        assert result.digest == expected[result.session_id]
        latencies.append(result.latency_s)

    start = time.perf_counter()
    await asyncio.gather(*(fire(at, spec) for at, spec in arrivals))
    seconds = time.perf_counter() - start
    return {
        "offered_qps": offered_qps,
        "queries": count,
        "seconds": seconds,
        "achieved_qps": count / seconds,
        "p50_ms": percentile(latencies, 50) * 1000,
        "p99_ms": percentile(latencies, 99) * 1000,
    }


async def run_admission_phase(specs):
    """A tight-budget pass: record real reject/defer decisions."""
    priced_bits = []
    probe = QueryService()
    try:
        for spec in specs:
            manifest = probe.register(spec)
            if manifest.predicted is not None:
                priced_bits.append(manifest.predicted["total_bits"])
    finally:
        await probe.close()
    if not priced_bits:  # pragma: no cover - sample-dependent
        return {"budget_bits": None, "admitted": 0, "rejected": 0,
                "deferred": 0}
    budget = int(percentile(priced_bits, 50))
    policy = AdmissionPolicy(max_predicted_bits=budget, over_budget="reject")
    admitted = rejected = 0
    async with QueryService(policy=policy) as service:
        for spec in specs:
            try:
                await service.submit(spec)
                admitted += 1
            except ServeError as err:
                assert err.code == "rejected"
                assert err.detail["predicted"]["total_bits"] > budget
                rejected += 1
    return {
        "budget_bits": budget,
        "admitted": admitted,
        "rejected": rejected,
        "deferred": 0,
        "priced_sessions": len(priced_bits),
    }


def run_benchmark():
    specs = build_workload()
    expected, cold = measure_cold(specs)

    async def serve_phases():
        async with QueryService() as service:
            for spec in specs:
                service.register(spec)
            closed = await run_closed_loop(service, specs, expected)
            offered = max(20.0, round(closed["qps"] / 4.0))
            open_loop = await run_open_loop(
                service, specs, expected, offered
            )
            # Registration pinned the same digests offline.
            for spec in specs:
                manifest = service.sessions[session_id_of(spec)].manifest
                assert manifest.answer_digest == expected[
                    session_id_of(spec)
                ]
            stats = service.stats.to_dict()
        return closed, open_loop, stats

    closed, open_loop, stats = asyncio.run(serve_phases())
    admission = asyncio.run(run_admission_phase(specs))
    served = stats["served"]
    coalesced = stats["coalesced_duplicates"] + stats["stacked_queries"]
    payload = {
        "workload": {
            "seed": BENCH_SEED,
            "sessions": len(specs),
            "closed_loop_requests": CLIENTS * REQUESTS_PER_CLIENT,
            "open_loop_requests": CLIENTS * REQUESTS_PER_CLIENT,
        },
        "cold": cold,
        "closed_loop": closed,
        "open_loop": open_loop,
        "speedup": closed["qps"] / cold["qps"],
        "speedup_floor": SPEEDUP_FLOOR,
        "coalescing": {
            **{k: stats[k] for k in (
                "batches", "coalesced_duplicates", "stacked_queries",
                "stacked_groups",
            )},
            "coalesced_rate": coalesced / served if served else 0.0,
        },
        "admission": admission,
        "byte_identical": True,  # every digest asserted above
    }
    return payload


def test_serving_sustained_qps_and_latency(benchmark):
    payload = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    print(
        f"\nserving: cold {payload['cold']['qps']:.1f} qps | "
        f"closed-loop {payload['closed_loop']['qps']:.1f} qps "
        f"(p50 {payload['closed_loop']['p50_ms']:.2f} ms, "
        f"p99 {payload['closed_loop']['p99_ms']:.2f} ms) | "
        f"open-loop {payload['open_loop']['achieved_qps']:.1f}/"
        f"{payload['open_loop']['offered_qps']:.0f} qps "
        f"(p99 {payload['open_loop']['p99_ms']:.2f} ms) | "
        f"speedup {payload['speedup']:.1f}x | "
        f"coalesced {payload['coalescing']['coalesced_rate']:.0%} | "
        f"admission {payload['admission']['rejected']} rejected"
    )
    assert payload["byte_identical"]
    assert payload["speedup"] >= SPEEDUP_FLOOR, (
        f"warm serving speedup {payload['speedup']:.2f}x fell below the "
        f"{SPEEDUP_FLOOR}x floor"
    )
    assert payload["closed_loop"]["p99_ms"] > 0
    assert payload["coalescing"]["coalesced_duplicates"] > 0
    assert payload["coalescing"]["stacked_queries"] >= 2
    assert payload["admission"]["rejected"] > 0


def main():
    import argparse
    import os

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=".", help="artifact directory")
    args = parser.parse_args()
    payload = run_benchmark()
    path = os.path.join(args.out, "BENCH_serving.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(payload, indent=2, sort_keys=True))
    print(f"\nwrote {path}; speedup {payload['speedup']:.1f}x "
          f"(floor {SPEEDUP_FLOOR}x)")
    return 0 if payload["speedup"] >= SPEEDUP_FLOOR else 1


if __name__ == "__main__":
    raise SystemExit(main())
