"""T1.R2 — Table 1 row 2: FAQ, *arbitrary* topology, d,r = O(1), gap Õ(1).

The same O(1)-degenerate queries as row 1, now across a spread of
topologies (clique, ring, grid, barbell, random-regular).  Asserts the
Õ(1) gap on every topology and the qualitative ordering the formulas
predict: better-connected topologies (larger MinCut / Steiner packing)
need fewer rounds for the same instance.
"""

import pytest

from repro.core import Planner, format_table, gap_within_budget, table1_row, worst_case_assignment
from repro.faq import bcq
from repro.hypergraph import Hypergraph
from repro.lowerbounds import embed_tribes_in_forest, embedding_capacity, hard_tribes
from repro.network import Topology

N = 128


def hard_path_instance(n, seed=1):
    h = Hypergraph.path(4)
    tribes = hard_tribes(embedding_capacity(h), n, True, seed=seed)
    emb = embed_tribes_in_forest(h, tribes)
    return emb, bcq(h, emb.factors, emb.domains, name="path4")


TOPOLOGIES = [
    Topology.line(5),
    Topology.ring(5),
    Topology.clique(5),
    Topology.grid(2, 3),
    Topology.barbell(3, 1),
]


def run_row(topo):
    emb, query = hard_path_instance(N)
    players = topo.nodes[: max(4, min(5, topo.num_nodes))]
    assignment = worst_case_assignment(
        emb.s_edges, emb.t_edges, query.hypergraph.edge_names, topo, players
    )
    return table1_row("faq-arbitrary", Planner(query, topo, assignment))


def test_faq_arbitrary_topologies(benchmark):
    rows = [run_row(t) for t in TOPOLOGIES[:-1]]
    rows.append(
        benchmark.pedantic(run_row, args=(TOPOLOGIES[-1],), rounds=1, iterations=1)
    )
    print(format_table(rows))
    for row in rows:
        assert row.correct
        assert gap_within_budget(row), (row.topology, row.gap)


def test_connectivity_helps(benchmark):
    """The clique needs no more rounds than the line on the same instance."""
    def run():
        line = run_row(Topology.line(5))
        clique = run_row(Topology.clique(5))
        return line, clique

    line, clique = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"line rounds={line.measured_rounds}  clique rounds={clique.measured_rounds}"
    )
    assert clique.measured_rounds <= line.measured_rounds
