"""T1.R2 — Table 1 row 2: FAQ, *arbitrary* topology, d,r = O(1), gap Õ(1).

A thin wrapper over the registered ``table1-arbitrary`` suite of
:mod:`repro.lab`: the same O(1)-degenerate hard-path query across a
spread of topologies (line, ring, clique, grid, barbell) with the
worst-case placement.  Keeps the row's shape assertions: the Õ(1) gap on
every topology, and the qualitative ordering the formulas predict —
better-connected topologies need fewer rounds for the same instance.
"""

import pytest

from repro.core import bound_certified, format_table, gap_within_budget
from repro.lab import run_suite, table1_arbitrary_suite


def run_rows():
    results = run_suite(table1_arbitrary_suite()).results
    assert all(r.bound_ok for r in results)
    return results


def test_faq_arbitrary_topologies(benchmark):
    results = benchmark.pedantic(run_rows, rounds=1, iterations=1)
    rows = [r.to_table1_row() for r in results]
    print(format_table(rows))
    for row in rows:
        assert row.correct
        assert gap_within_budget(row), (row.topology, row.gap)
        # Hard (TRIBES) instance under worst-case placement: the formula
        # lower bound is certified on the run itself.
        assert bound_certified(row), (row.measured_rounds, row.lower_formula)


def test_connectivity_helps(benchmark):
    """The clique needs no more rounds than the line on the same instance."""
    results = benchmark.pedantic(run_rows, rounds=1, iterations=1)
    by_topology = {r.spec.topology: r for r in results}
    line, clique = by_topology["line"], by_topology["clique"]
    print(
        f"line rounds={line.measured_rounds}  clique rounds={clique.measured_rounds}"
    )
    assert clique.measured_rounds <= line.measured_rounds
