"""A.WIDTH — ablation: round cost as a function of internal-node-width.

Section 2.3 motivates y(H) as *the* width notion for round complexity:
the forest protocol runs one star phase per internal node (Lemma 4.1), so
rounds should scale linearly in y at fixed N.  Path queries make y
controllable exactly: y(path with k edges) = k - 2.
"""

import pytest

from repro.core import Planner
from repro.decomposition import internal_node_width
from repro.faq import bcq
from repro.hypergraph import Hypergraph
from repro.network import Topology
from repro.workloads import random_instance

N = 64


def run_path(k_edges):
    h = Hypergraph.path(k_edges)
    factors, domains = random_instance(h, domain_size=12, relation_size=N, seed=k_edges)
    query = bcq(h, factors, domains, name=f"path{k_edges}")
    topo = Topology.line(k_edges)
    report = Planner(query, topo).execute()
    assert report.correct
    return report, internal_node_width(h)


def test_rounds_scale_with_width(benchmark):
    results = [run_path(k) for k in (3, 4, 5)]
    results.append(benchmark.pedantic(run_path, args=(6,), rounds=1, iterations=1))
    print(f"{'edges':>6} {'y(H)':>5} {'stars':>6} {'rounds':>8}")
    rows = []
    for (report, y), k in zip(results, (3, 4, 5, 6)):
        stars = report.protocol.num_star_phases
        print(f"{k:>6} {y:>5} {stars:>6} {report.measured_rounds:>8}")
        rows.append((y, stars, report.measured_rounds))
    # One star phase per internal node (Lemma 4.1's y factor), up to the
    # final root phase folded into the trivial step.
    for y, stars, _rounds in rows:
        assert abs(stars - y) <= 1
    # Rounds grow linearly with y.  (Our implementation pipelines disjoint
    # star phases, so the measured cost is N + c*y rather than the paper's
    # un-pipelined y*N — strictly inside the upper bound; the *increment*
    # per extra internal node is what must stay constant.)
    measured = [rounds for _y, _s, rounds in rows]
    assert measured == sorted(measured)
    increments = [b - a for a, b in zip(measured, measured[1:])]
    print("per-star increments:", increments)
    assert all(inc > 0 for inc in increments)
    assert max(increments) <= 2.5 * min(increments)


def test_flattened_ghd_never_worse(benchmark):
    """best_gyo_ghd (re-rooted + MD-flattened) never exceeds the canonical
    construction's internal nodes, across a query zoo."""
    from repro.decomposition import best_gyo_ghd, gyo_ghd
    from repro.workloads import random_tree_query

    def run():
        out = []
        for seed in range(12):
            h = random_tree_query(6, seed=seed)
            canonical = gyo_ghd(h).num_internal_nodes
            best = best_gyo_ghd(h).num_internal_nodes
            out.append((canonical, best))
        return out

    pairs = benchmark.pedantic(run, rounds=1, iterations=1)
    improved = sum(1 for c, b in pairs if b < c)
    print(f"flattening improved {improved}/{len(pairs)} random trees")
    for canonical, best in pairs:
        assert best <= canonical
