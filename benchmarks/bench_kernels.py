"""Kernel tier microbenchmarks — NumPy vs JIT on the data-plane kernels.

Times every :mod:`repro.kernels` kernel across input sizes on both
tiers.  The tier contract is "byte-identical outputs, never slower":
with numba installed the JIT tier must not lose to NumPy on the largest
input (after warmup — compilation is excluded); without numba the JIT
tier *is* the NumPy tier, so the comparison is reported as skipped and
only the NumPy trajectory prints.  Either way the bench asserts the
parity half of the contract on every timed input.
"""

import time

import numpy as np
import pytest

from repro import kernels

from conftest import print_banner

#: Input rows per size step.
SIZES = (1_000, 10_000, 100_000)
REPEATS = 5
#: The JIT tier may not be slower than ``SLACK`` x NumPy at the largest
#: size (generous: the assertion guards regressions, not marketing).
SLACK = 1.25


def _inputs(n, seed=0):
    rng = np.random.default_rng(seed)
    return {
        "left": rng.integers(0, max(2, n // 4), size=n).astype(np.int64),
        "right": rng.integers(0, max(2, n // 4), size=n).astype(np.int64),
        "key": rng.integers(0, max(2, n // 8), size=n).astype(np.int64),
        "values": rng.random(n),
        "concat": rng.integers(-n, n, size=n).astype(np.int64),
        "edge_ids": rng.integers(0, 64, size=n).astype(np.int64),
        "bits": rng.integers(1, 128, size=n).astype(np.int64),
    }


def _kernel_calls(data):
    """name -> zero-arg thunk returning comparable output arrays."""
    order, starts = None, None

    def groups():
        nonlocal order, starts
        order, starts = kernels.sort_groups_key(data["key"])
        return [order, starts]

    def reduce_():
        if order is None:
            groups()
        return [kernels.grouped_reduce(data["values"], order, starts, np.add)]

    def accumulate():
        totals = np.zeros(64, dtype=np.int64)
        kernels.round_accumulate(totals, data["edge_ids"], data["bits"])
        return [totals]

    return {
        "match_indices": lambda: list(
            kernels.match_indices(data["left"], data["right"])
        ),
        "sort_groups_key": groups,
        "grouped_reduce": reduce_,
        "encode_unique": lambda: list(kernels.encode_unique(data["concat"])),
        "round_accumulate": accumulate,
    }


def _time(thunk):
    best = float("inf")
    out = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        out = thunk()
        best = min(best, time.perf_counter() - start)
    return best, out


def test_kernel_tiers_never_slower():
    print_banner(
        "kernel tiers: numpy vs jit "
        f"(numba {'available' if kernels.HAVE_NUMBA else 'NOT installed'})"
    )
    header = f"{'kernel':<18} {'rows':>8} {'numpy ms':>10} {'jit ms':>10} {'ratio':>7}"
    print(header)
    print("-" * len(header))

    largest_ratios = {}
    for n in SIZES:
        data = _inputs(n)
        for name in _kernel_calls(data):
            with kernels.use_tier("numpy"):
                np_s, np_out = _time(_kernel_calls(data)[name])
            if kernels.HAVE_NUMBA:
                with kernels.use_tier("jit"):
                    _kernel_calls(data)[name]()  # warmup: compile
                    jit_s, jit_out = _time(_kernel_calls(data)[name])
                for a, b in zip(np_out, jit_out):
                    assert a.dtype == b.dtype
                    np.testing.assert_array_equal(a, b)
                ratio = jit_s / np_s if np_s > 0 else 1.0
                largest_ratios[name] = ratio  # last size wins: largest N
                jit_col, ratio_col = f"{jit_s * 1e3:>10.3f}", f"{ratio:>7.2f}"
            else:
                jit_col, ratio_col = f"{'-':>10}", f"{'-':>7}"
            print(
                f"{name:<18} {n:>8} {np_s * 1e3:>10.3f} {jit_col} {ratio_col}"
            )

    if not kernels.HAVE_NUMBA:
        print("\nno numba: jit tier resolves to numpy; comparison skipped")
        pytest.skip("numba not installed; JIT-vs-NumPy comparison skipped")

    print(f"\nlargest-input jit/numpy ratios: "
          + ", ".join(f"{k}={v:.2f}" for k, v in largest_ratios.items()))
    slow = {k: v for k, v in largest_ratios.items() if v > SLACK}
    assert not slow, (
        f"JIT tier slower than NumPy beyond {SLACK}x slack at "
        f"{SIZES[-1]} rows: {slow}"
    )
