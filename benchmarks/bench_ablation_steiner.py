"""A.STEINER — ablation of Δ in ``min_Δ (N / ST(G,K,Δ) + Δ)`` (Thm 3.11).

Sweeps the Steiner-tree diameter bound Δ on a clique and on a grid,
measuring (a) the packing size ST(G, K, Δ) and (b) the actual round count
of the set-intersection protocol pinned to that Δ.  Asserts the theorem's
tradeoff: tiny Δ admits no packing, huge Δ wastes Δ additive rounds, and
the optimizer's choice is within a constant of the best sweep point.
"""

import pytest

from repro.network import Topology, st_value
from repro.protocols import run_set_intersection

N = 120


def sweep(topo, players, deltas):
    vectors = {p: [True] * N for p in players}
    rows = []
    for delta in deltas:
        st = st_value(topo, players, delta)
        if st == 0:
            rows.append((delta, 0, None))
            continue
        _ans, res = run_set_intersection(
            topo, vectors, players[0], max_diameter=delta
        )
        rows.append((delta, st, res.rounds))
    return rows


def test_delta_sweep_clique(benchmark):
    topo = Topology.clique(6)
    players = topo.nodes
    rows = benchmark.pedantic(
        sweep, args=(topo, players, (1, 2, 3, 5, 6)), rounds=1, iterations=1
    )
    print(f"{'Δ':>3} {'ST(G,K,Δ)':>10} {'rounds':>8}   (clique(6), N={N})")
    feasible = []
    for delta, st, rounds in rows:
        print(f"{delta:>3} {st:>10} {rounds if rounds is not None else '-':>8}")
        if rounds is not None:
            feasible.append((delta, st, rounds))
    assert feasible, "no feasible Δ found"
    # More trees -> fewer rounds (the N/ST term dominates at this N).
    by_st = sorted(feasible, key=lambda r: r[1])
    assert by_st[-1][2] <= by_st[0][2]
    # The optimized protocol (Δ = None) matches the best sweep point
    # within a small factor.
    vectors = {p: [True] * N for p in players}
    _ans, auto = run_set_intersection(topo, vectors, players[0])
    best = min(r for _d, _s, r in feasible)
    print(f"auto-Δ rounds: {auto.rounds}, best sweep: {best}")
    assert auto.rounds <= 1.5 * best + 8


def test_delta_sweep_grid(benchmark):
    topo = Topology.grid(2, 3)
    players = topo.nodes
    rows = benchmark.pedantic(
        sweep, args=(topo, players, (2, 3, 4, 6)), rounds=1, iterations=1
    )
    print(f"{'Δ':>3} {'ST(G,K,Δ)':>10} {'rounds':>8}   (grid(2x3), N={N})")
    for delta, st, rounds in rows:
        print(f"{delta:>3} {st:>10} {rounds if rounds is not None else '-':>8}")
    feasible = [(d, s, r) for d, s, r in rows if r is not None]
    assert feasible
    # Rounds always at least N/ST (the information bottleneck).
    for _d, st, rounds in feasible:
        assert rounds >= N / st - 1
