"""Engine comparison — generator vs compiled protocol engine.

The two-plane refactor split protocol execution into a control plane
(compiled :class:`~repro.network.program.NodeProgram` schedules) and a
columnar block data plane.  This bench runs the lab's ``scaling`` suite
on *both* engines and regenerates the ``BENCH_lab.json`` timings
trajectory, asserting the refactor's two contracts:

* **exact parity** — every generator/compiled pair agrees on the answer
  digest, the round count and the total bit count (the lab's
  ``parity_failures`` check: byte-identical accounting, not tolerance);
* **speedup shape** — on the largest streaming scenario (the
  ``scaling-xl`` hard-star rows on the columnar data plane) the compiled
  engine's protocol wall-clock is at least ``SPEEDUP_FLOOR`` times
  faster (in practice 15-30x: cycle fast-forwarding makes thousands of
  pipeline rounds cost O(1) Python; the 5x floor keeps the assertion
  robust on slow or noisy CI machines).
"""

import json

from repro.lab import get_suite, run_suite
from repro.lab.report import parity_failures, timings_payload
from repro.lab.suites import with_engines

from conftest import print_banner

SPEEDUP_FLOOR = 5.0


def test_engine_compare_scaling_suite():
    print_banner("protocol engines on the scaling suite: generator vs compiled")
    suite = with_engines(
        get_suite("scaling"), "scaling", get_suite("scaling").description
    )
    run = run_suite(suite)  # no cache: wall times must be real
    assert run.all_correct, "some scenario disagreed with the reference solver"

    records = [r.deterministic_record() for r in run.results]
    failures = parity_failures(records)
    assert not failures, f"engine parity violated: {failures}"

    timings = timings_payload(run)
    header = f"{'scenario':<58} {'rows':>6} {'gen ms':>8} {'comp ms':>8} {'speedup':>8}"
    print(header)
    print("-" * len(header))
    for pair in timings["engine_pairs"]:
        speedup = pair["protocol_speedup"]
        speedup_col = f"{speedup:>8.1f}" if speedup is not None else f"{'-':>8}"
        print(
            f"{pair['label'].split('/s2')[0][:58]:<58} {pair['rows']:>6} "
            f"{pair['generator_protocol_s'] * 1e3:>8.1f} "
            f"{pair['compiled_protocol_s'] * 1e3:>8.1f} "
            + speedup_col
        )
    headline = timings["headline"]
    print(
        f"\nlargest scenario ({headline['largest_scenario']}): "
        f"{headline['protocol_speedup']:.1f}x"
    )
    print(json.dumps({"headline": headline}, indent=2, sort_keys=True))
    assert headline["protocol_speedup"] >= SPEEDUP_FLOOR, (
        f"compiled engine only {headline['protocol_speedup']:.1f}x faster on "
        f"the largest scaling scenario (floor {SPEEDUP_FLOOR}x)"
    )
